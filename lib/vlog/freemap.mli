(** Physical-block occupancy tracking for eager writing.

    The disk is divided into fixed-size allocation units ("physical
    blocks") of a whole number of sectors; blocks never straddle a track
    boundary (enforced at creation).  The freemap knows, per track and
    globally, which blocks are free — the eager allocator and the
    compactor both work against it. *)

type t

val create : geometry:Disk.Geometry.t -> sectors_per_block:int -> t
(** All blocks free.  Requires [sectors_per_track mod sectors_per_block = 0]. *)

val geometry : t -> Disk.Geometry.t
val sectors_per_block : t -> int
val blocks_per_track : t -> int
val n_blocks : t -> int
val n_tracks : t -> int

val lba_of_block : t -> int -> int
(** First sector of a block. *)

val block_of_lba : t -> int -> int
val track_of_block : t -> int -> int
val start_sector_of_block : t -> int -> int
(** Sector offset of the block within its track. *)

val cylinder_of_track : t -> int -> int
val track_in_cylinder : t -> int -> int
(** Surface index of a global track. *)

val cylinder_of_block : t -> int -> int

val is_free : t -> int -> bool
val occupy : t -> int -> unit
(** Raises [Invalid_argument] if the block is already occupied — callers
    must never double-allocate. *)

val release : t -> int -> unit
(** Raises [Invalid_argument] if the block is already free or is a grown
    defect ({!mark_bad}). *)

val mark_bad : t -> int -> unit
(** Record a grown media defect: the block becomes permanently occupied —
    never allocated, never released.  Idempotent.  This is the VLD's
    defect list: because every write is eager-allocated, retiring a block
    here and allocating another {e is} the remap a conventional drive
    does with a spare-sector pool. *)

val is_bad : t -> int -> bool
val n_bad : t -> int

val free_total : t -> int
val free_in_track : t -> int -> int

val free_in_cylinder : t -> int -> int
(** Free blocks in a whole cylinder; O(1).  The eager allocator skips
    fully-occupied cylinders with this before looking at any track. *)

val occupied_in_track : t -> int -> int
val utilization : t -> float
(** Occupied fraction of all blocks. *)

(** {2 Allocation index}

    A word-scanned free bitset answers positional queries in O(words)
    instead of O(blocks).  Invariants (checked by {!index_consistent}):
    a bit is set iff the block is neither occupied nor a grown defect
    ({!mark_bad} clears it permanently), per-track counts equal the
    bitset's per-track population, and per-cylinder counts are the sum
    of their tracks' counts. *)

val first_free_at_or_after : t -> track:int -> slot:int -> int option
(** First free block of [track] whose in-track index is >= [slot]
    ([slot] in [0, blocks_per_track]), or [None].  Word-level scan. *)

val nearest_free_in_track : t -> track:int -> slot:int -> int option
(** Cyclically-first free block of [track] at or after [slot] ([slot] in
    [0, blocks_per_track)), wrapping to the track start: exactly the
    block whose start sector next passes under the head when the head
    sits at the rotational position of slot [slot].  [None] iff the
    track has no free block. *)

val index_consistent : t -> bool
(** Whole-structure audit of the index invariants above; test/debug
    only, O(blocks). *)

val fold_free_in_track : t -> track:int -> init:'a -> f:('a -> int -> 'a) -> 'a
(** Fold [f] over the free block indices of a track. *)

val empty_tracks : t -> int list
(** Tracks with every block free, ascending. *)

val random_occupy : t -> Vlog_util.Prng.t -> utilization:float -> unit
(** Occupy a uniformly random subset of the currently free blocks so the
    overall utilization reaches the target; used by the model-validation
    experiments to create random free-space distributions. *)
