(** Mechanical disk simulator.

    Models a single drive: SCSI command overhead, seek, head switch,
    rotational position (a function of absolute simulated time — the
    platter never stops spinning), per-sector media transfer, track skew,
    and a track-buffer read-ahead cache.  All requests advance the shared
    {!Vlog_util.Clock.t} and return a {!Vlog_util.Breakdown.t} of where the
    time went.

    Requests may span tracks and cylinders; the simulator splits them
    internally and pays head switches / seeks between the pieces.  Thanks
    to track skew, a sequential transfer that crosses a track boundary
    keeps streaming instead of missing a revolution. *)

type t

val create :
  ?buffer_policy:Track_buffer.policy ->
  ?store:Sector_store.t ->
  ?trace:Trace.sink ->
  profile:Profile.t ->
  clock:Vlog_util.Clock.t ->
  unit ->
  t
(** A disk with zeroed platters, head parked at cylinder 0 track 0.
    [buffer_policy] defaults to [Forward_discard] (the conventional
    drive); a VLD creates its disk with [Whole_track].  [store] supplies
    existing platter contents (e.g. a {!Sector_store.snapshot} taken at a
    simulated power failure) instead of zeroed ones; its geometry must
    match the profile's.  [trace] (default {!Trace.null}) observes every
    request as a span — [disk.read]/[disk.write] with
    [disk.scsi]/[disk.access]/[disk.buffer_hit] children — and is the
    sink every layer stacked on this disk inherits. *)

val profile : t -> Profile.t
val geometry : t -> Geometry.t
val clock : t -> Vlog_util.Clock.t
val store : t -> Sector_store.t

val trace : t -> Trace.sink
(** The sink given at {!create}; {!Trace.null} when tracing is off. *)

val current_cylinder : t -> int
val current_track : t -> int

val read : ?scsi:bool -> t -> lba:int -> sectors:int -> Bytes.t * Vlog_util.Breakdown.t
(** Service a read.  [scsi] (default true) controls whether the SCSI
    command overhead is charged — a VLD's internal second access within
    one host command does not pay it again.  A track-buffer hit costs
    only SCSI + transfer.  Raises {!Media_failure} if the read faults
    (injected error or media ECC mismatch): a drive never silently
    returns corrupt data. *)

val write : ?scsi:bool -> t -> lba:int -> Bytes.t -> Vlog_util.Breakdown.t
(** Service a write of a whole number of sectors starting at [lba].
    Raises {!Media_failure} on an injected write fault. *)

(** {2 Fault injection}

    A deterministic fault plan (see the [fault] library) can interpose on
    every media access.  Nothing is installed by default; a disk without
    an injector behaves exactly as before. *)

type read_fault =
  | Transient_read  (** the command fails; an immediate retry may succeed *)
  | Unreadable of int  (** permanent defect at the given absolute lba *)

type write_fault =
  | Torn_write of int
      (** power dies after this many sectors of the request are on the
          platter; the operation raises {!Power_cut} *)
  | Unwritable of int  (** grown defect at the given absolute lba *)
  | Transient_write
      (** the command fails without touching the platter; an immediate
          retry may succeed (a hung or flaky drive, not a media defect) *)

type injector = {
  on_read : lba:int -> sectors:int -> read_fault option;
  on_write : lba:int -> sectors:int -> write_fault option;
}
(** Consulted once per host request (including internal [scsi:false]
    accesses).  A hook may raise {!Power_cut} directly to cut power on an
    operation boundary. *)

exception Power_cut
(** Simulated power loss mid-operation.  The caller owning the simulation
    catches it, freezes the {!Sector_store} and brings up a fresh disk. *)

type media_error = { error_lba : int; transient : bool }

exception Media_failure of media_error
(** Raised by the non-[_checked] paths when a fault fires, so unmodified
    callers fail stop instead of consuming corrupt data. *)

val set_injector : t -> injector option -> unit

type drive_health =
  | Ok_drive  (** no whole-drive condition in effect *)
  | Hung of float
      (** the drive is stalled until the given simulated time (ms);
          commands submitted before then fail transiently *)
  | Flaky_drive  (** intermittent transient failures; retries may succeed *)
  | Dead_drive  (** the drive is gone for good; every command fails *)
(** Whole-drive condition, as distinct from per-sector faults.  Layers
    holding in-flight commands (the command queue, the volume manager)
    consult this to decide between stalling a tag, retrying with backoff,
    and aborting outright. *)

val set_health_probe : t -> (unit -> drive_health) option -> unit
(** Install a whole-drive health probe (a fault plan registers one in
    [Fault.Plan.install]).  [None] (the default) reads as {!Ok_drive}. *)

val health : t -> drive_health
(** Current whole-drive condition; {!Ok_drive} when no probe is set. *)

val read_checked :
  ?scsi:bool -> t -> lba:int -> sectors:int ->
  (Bytes.t, media_error) result * Vlog_util.Breakdown.t
(** Like {!read}, but returns faults instead of raising: an injected
    error, or an ECC mismatch on a rotted sector (the data is withheld).
    Mechanical time is charged either way — a failed read still seeks,
    rotates and retries for a revolution. *)

val write_checked :
  ?scsi:bool -> t -> lba:int -> Bytes.t ->
  (unit, media_error) result * Vlog_util.Breakdown.t
(** Like {!write}, but reports grown defects as [Error] so firmware-level
    callers can remap and retry.  Sectors preceding the defect may have
    been written.  [Torn_write] still raises {!Power_cut} — there is no
    one to report to when the power is gone. *)

(** {2 Timing probes}

    Pure estimates used by the eager-writing allocator to compare
    candidate locations.  None of these move the head or advance time. *)

val move_cost : t -> cyl:int -> track:int -> float
(** Mechanical cost of positioning the head over the given track from its
    current position: seek for a cylinder change, head switch for a
    surface change, the max of the two when both change. *)

val sector_position_at : t -> track_index:int -> at:float -> float
(** The (continuous) sector coordinate — the rotational angle in sector
    units — of the given track that is under the head at absolute time
    [at], accounting for track skew.  Closed form: one evaluation, no
    iteration.  In [\[0, sectors_per_track)]. *)

val rotational_delay_to : t -> track_index:int -> sector:int -> at:float -> float
(** Milliseconds of rotation needed, starting at absolute time [at], for
    the start of [sector] on the given track to reach the head.
    Equivalent to {!rotational_delay_from} of {!sector_position_at}. *)

val rotational_delay_from : t -> pos:float -> sector:int -> float
(** {!rotational_delay_to} given an already-computed rotational position
    [pos] (from {!sector_position_at}): a single arithmetic evaluation,
    so a caller comparing many sectors of one track at one arrival time
    computes the position once.  Bit-identical to {!rotational_delay_to}
    at the same position. *)

val estimate_access : t -> lba:int -> sectors:int -> float
(** Mechanical time (positioning + rotation + transfer, no SCSI) that a
    request would cost if issued now. *)

(** {2 Statistics} *)

type stats = {
  reads : int;
  writes : int;
  sectors_read : int;
  sectors_written : int;
  buffer_hits : int;
  read_faults : int;  (** injected read faults + ECC mismatches *)
  write_faults : int;  (** injected write faults (torn or defect) *)
  busy_ms : float;  (** total simulated time spent servicing requests *)
}

val stats : t -> stats
(** A snapshot of the counters at this instant. *)

val reset_stats : t -> unit
(** Zero {e every} counter, [busy_ms] included — also the busy time that
    background work (e.g. a VLD compactor running inside an idle window)
    accumulated since the last foreground operation. *)
