open Vlog_util

type policy = Fifo | Elevator | Satf

let policy_to_string = function
  | Fifo -> "fifo"
  | Elevator -> "elevator"
  | Satf -> "satf"

let policy_of_string = function
  | "fifo" -> Ok Fifo
  | "elevator" -> Ok Elevator
  | "satf" -> Ok Satf
  | s -> Error (Printf.sprintf "unknown scheduling policy %S (fifo|elevator|satf)" s)

type outcome =
  | Data of Bytes.t
  | Wrote of int
  | Failed of Disk_sim.media_error

type op =
  | Read of { lba : int; sectors : int }
  | Write of { lba : int; buf : Bytes.t }
  | Placed_write of {
      sectors : int;
      estimate : unit -> float option;
      service : unit -> (int, Disk_sim.media_error) result * Breakdown.t;
    }
  | Hosted of {
      cost : unit -> float;
      cylinder : unit -> int;
      service : unit -> outcome * Breakdown.t;
    }

type completion = {
  tag : int;
  outcome : outcome;
  submitted : float;
  started : float;
  finished : float;
  queue_wait : float;
  bd : Breakdown.t;
}

type cmd = {
  c_tag : int;
  c_op : op;
  c_submitted : float;
  c_background : bool;
      (* low-priority tag: dispatched only when no foreground command is
         eligible (rebuild copies, scrubbing) *)
  c_owner : string option;  (* tenant attribution for fairness counters *)
  mutable c_not_before : float;
      (* a stalled tag may not be re-dispatched before this instant *)
  mutable c_stalls : int;
}

type stats = {
  submitted : int;
  completed : int;
  stall_requeues : int;
  retry_requeues : int;
  max_depth : int;
}

type t = {
  disk : Disk_sim.t;
  pol : policy;
  stall_probe : unit -> float option;
  max_stall_retries : int;
  retry_backoff : float option;
  retry_jitter : Prng.t option;
  stall_budget_ms : float option;
  mutable next_tag : int;
  mutable queue : cmd list;  (* submission order *)
  mutable done_rev : (int * completion) list;
  mutable n_submitted : int;
  mutable n_completed : int;
  mutable n_stall_requeues : int;
  mutable n_retry_requeues : int;
  mutable hw_depth : int;
}

let create ?(policy = Fifo) ?(stall_probe = fun () -> None)
    ?(max_stall_retries = 64) ?retry_backoff ?retry_jitter ?stall_budget_ms
    ~disk () =
  {
    disk;
    pol = policy;
    stall_probe;
    max_stall_retries;
    retry_backoff;
    retry_jitter;
    stall_budget_ms;
    next_tag = 0;
    queue = [];
    done_rev = [];
    n_submitted = 0;
    n_completed = 0;
    n_stall_requeues = 0;
    n_retry_requeues = 0;
    hw_depth = 0;
  }

let policy t = t.pol
let disk t = t.disk
let clock t = Disk_sim.clock t.disk
let now t = Clock.now (clock t)

let submit ?at ?(background = false) ?owner t op =
  let at = match at with Some a -> a | None -> now t in
  if at < now t -. 1e-9 then
    invalid_arg "Disk_queue.submit: arrival time is in the past";
  let tag = t.next_tag in
  t.next_tag <- tag + 1;
  t.n_submitted <- t.n_submitted + 1;
  t.queue <-
    t.queue
    @ [
        {
          c_tag = tag;
          c_op = op;
          c_submitted = at;
          c_background = background;
          c_owner = owner;
          c_not_before = at;
          c_stalls = 0;
        };
      ];
  tag

let pending t = List.length t.queue

let depth t =
  let n = now t in
  List.length (List.filter (fun c -> c.c_submitted <= n) t.queue)

(* --- scheduling ------------------------------------------------------- *)

let ready_at c = Float.max c.c_submitted c.c_not_before

(* Mechanical cost of a command if dispatched now; the SATF comparator.
   Every candidate would pay the same SCSI overhead, so it cancels. *)
let cost t c =
  match c.c_op with
  | Read { lba; sectors } -> Disk_sim.estimate_access t.disk ~lba ~sectors
  | Write { lba; buf } ->
    let sectors = Bytes.length buf / (Disk_sim.geometry t.disk).sector_bytes in
    Disk_sim.estimate_access t.disk ~lba ~sectors
  | Placed_write { estimate; _ } -> (
    (* A full disk still has to be dispatched to report its failure. *)
    match estimate () with Some cost -> cost | None -> 0.)
  | Hosted { cost; _ } -> cost ()

let cylinder_of t c =
  match c.c_op with
  | Read { lba; _ } | Write { lba; _ } ->
    (Geometry.addr_of_lba (Disk_sim.geometry t.disk) lba).cyl
  | Placed_write _ ->
    (* eager placement can land near the head wherever it is *)
    Disk_sim.current_cylinder t.disk
  | Hosted { cylinder; _ } -> cylinder ()

(* Earlier submission wins ties, then lower tag. *)
let fifo_before a b =
  a.c_submitted < b.c_submitted
  || (a.c_submitted = b.c_submitted && a.c_tag < b.c_tag)

let pick_min before = function
  | [] -> invalid_arg "Disk_queue.pick: no eligible command"
  | c :: cs -> List.fold_left (fun best c -> if before c best then c else best) c cs

let pick t eligible =
  (* Background tags yield: they are considered only when no foreground
     command is eligible, so rebuild traffic never outranks a client. *)
  let eligible =
    match List.filter (fun c -> not c.c_background) eligible with
    | [] -> eligible
    | fg -> fg
  in
  match t.pol with
  | Fifo -> pick_min fifo_before eligible
  | Satf ->
    let keyed = List.map (fun c -> (cost t c, c)) eligible in
    let best =
      pick_min
        (fun (ca, a) (cb, b) -> ca < cb || (ca = cb && fifo_before a b))
        keyed
    in
    snd best
  | Elevator -> (
    (* C-SCAN: serve the smallest cylinder at or ahead of the head,
       wrapping to the lowest cylinder when the sweep runs out. *)
    let head = Disk_sim.current_cylinder t.disk in
    let keyed = List.map (fun c -> (cylinder_of t c, c)) eligible in
    let cyl_before (ca, a) (cb, b) = ca < cb || (ca = cb && fifo_before a b) in
    match List.filter (fun (cyl, _) -> cyl >= head) keyed with
    | [] -> snd (pick_min cyl_before keyed)
    | ahead -> snd (pick_min cyl_before ahead))

(* --- service ---------------------------------------------------------- *)

let finish t c outcome bd ~started =
  let finished = now t in
  let comp =
    {
      tag = c.c_tag;
      outcome;
      submitted = c.c_submitted;
      started;
      finished;
      queue_wait = started -. c.c_submitted;
      bd;
    }
  in
  t.queue <- List.filter (fun c' -> c'.c_tag <> c.c_tag) t.queue;
  t.done_rev <- (c.c_tag, comp) :: t.done_rev;
  t.n_completed <- t.n_completed + 1;
  let sink = Disk_sim.trace t.disk in
  Trace.observe sink "queue.wait" comp.queue_wait;
  Trace.incr sink "queue.completions";
  if c.c_background then Trace.incr sink "queue.background_completions";
  match c.c_owner with
  | None -> ()
  | Some o ->
    (* tag → tenant attribution: per-tenant latency histograms and op
       counters, rendered as a fairness table by [Trace.pp_summary] *)
    Trace.observe sink ("tenant." ^ o ^ ".lat") (finished -. c.c_submitted);
    Trace.incr sink ("tenant." ^ o ^ ".ops")

(* In-flight failure policy for a transiently failed tag.  A hang (the
   stall probe yields a deadline) stalls just this tag behind the
   deadline so other tags dispatch meanwhile; a flaky drive (no
   deadline) retries with seeded exponential backoff when the queue was
   created with [retry_backoff].  Both are bounded twice over: at most
   [max_stall_retries] requeues per tag, and — when [stall_budget_ms]
   is set — the tag may never be pushed past its submission time plus
   the budget.  Exhausting either bound, or a non-transient error,
   completes the tag as [Failed]: escalation (suspect legs, failover)
   lives in the device layer above. *)
let requeue_or_fail t c (e : Disk_sim.media_error) bd ~started =
  let n = now t in
  let target =
    if not e.transient then None
    else
      match t.stall_probe () with
      | Some until -> Some (Float.max until n, `Stall)
      | None -> (
        match t.retry_backoff with
        | None -> None
        | Some base ->
          let mult = float_of_int (1 lsl min c.c_stalls 6) in
          let jitter =
            match t.retry_jitter with
            | None -> 1.
            | Some prng -> 0.75 +. Prng.float prng 0.5
          in
          Some (n +. (base *. mult *. jitter), `Retry))
  in
  let within_budget nb =
    match t.stall_budget_ms with
    | None -> true
    | Some budget -> nb -. c.c_submitted <= budget
  in
  match target with
  | Some (nb, counter) when c.c_stalls < t.max_stall_retries && within_budget nb
    ->
    c.c_not_before <- nb;
    c.c_stalls <- c.c_stalls + 1;
    let sink = Disk_sim.trace t.disk in
    (match counter with
    | `Stall ->
      t.n_stall_requeues <- t.n_stall_requeues + 1;
      Trace.incr sink "queue.stall_requeues"
    | `Retry ->
      t.n_retry_requeues <- t.n_retry_requeues + 1;
      Trace.incr sink "queue.retry_requeues")
  | _ -> finish t c (Failed e) bd ~started

let service t c =
  let started = now t in
  let d = depth t in
  if d > t.hw_depth then t.hw_depth <- d;
  Trace.observe (Disk_sim.trace t.disk) "queue.depth" (float_of_int d);
  match c.c_op with
  | Read { lba; sectors } -> (
    match Disk_sim.read_checked t.disk ~lba ~sectors with
    | Ok data, bd -> finish t c (Data data) bd ~started
    | Error e, bd -> requeue_or_fail t c e bd ~started)
  | Write { lba; buf } -> (
    match Disk_sim.write_checked t.disk ~lba buf with
    | Ok (), bd -> finish t c (Wrote lba) bd ~started
    | Error e, bd -> requeue_or_fail t c e bd ~started)
  | Placed_write { service = run; _ } -> (
    match run () with
    | Ok pba, bd -> finish t c (Wrote pba) bd ~started
    | Error e, bd -> requeue_or_fail t c e bd ~started)
  | Hosted { service = run; _ } -> (
    (* The host layer above (volume leg) runs its own retry/remap and
       failure policy inside [run]; a non-transient [Failed] outcome is
       final.  A {e transient} failure goes through the same
       stall/backoff machinery as native commands — the service closure
       runs again when the tag is re-dispatched. *)
    match run () with
    | Failed e, bd when e.transient -> requeue_or_fail t c e bd ~started
    | outcome, bd -> finish t c outcome bd ~started)

let step t =
  match t.queue with
  | [] -> false
  | q ->
    let n = now t in
    let eligible = List.filter (fun c -> ready_at c <= n) q in
    let eligible =
      match eligible with
      | _ :: _ -> eligible
      | [] ->
        (* idle: advance to the earliest arrival / stall deadline *)
        let t0 =
          List.fold_left (fun acc c -> Float.min acc (ready_at c)) infinity q
        in
        Clock.advance_to (clock t) t0;
        let n = now t in
        List.filter (fun c -> ready_at c <= n) q
    in
    service t (pick t eligible);
    true

let poll t =
  let cs = List.rev t.done_rev in
  t.done_rev <- [];
  cs

let drain t =
  let rec loop () = if step t then loop () in
  loop ();
  poll t

let stats t =
  {
    submitted = t.n_submitted;
    completed = t.n_completed;
    stall_requeues = t.n_stall_requeues;
    retry_requeues = t.n_retry_requeues;
    max_depth = t.hw_depth;
  }
