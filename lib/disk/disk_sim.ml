open Vlog_util

type stats = {
  reads : int;
  writes : int;
  sectors_read : int;
  sectors_written : int;
  buffer_hits : int;
  read_faults : int;
  write_faults : int;
  busy_ms : float;
}

(* Counters live in individually mutable fields so the hot path never
   copies a record; [reset_stats] must therefore audit every field —
   including [busy_ms], which background work (a VLD compactor running
   inside an idle window) keeps accumulating between foreground ops. *)
type counters = {
  mutable c_reads : int;
  mutable c_writes : int;
  mutable c_sectors_read : int;
  mutable c_sectors_written : int;
  mutable c_buffer_hits : int;
  mutable c_read_faults : int;
  mutable c_write_faults : int;
  mutable c_busy_ms : float;
}

type read_fault = Transient_read | Unreadable of int
type write_fault = Torn_write of int | Unwritable of int | Transient_write

type injector = {
  on_read : lba:int -> sectors:int -> read_fault option;
  on_write : lba:int -> sectors:int -> write_fault option;
}

type drive_health = Ok_drive | Hung of float | Flaky_drive | Dead_drive

exception Power_cut

type media_error = { error_lba : int; transient : bool }

exception Media_failure of media_error

type t = {
  profile : Profile.t;
  clock : Clock.t;
  store : Sector_store.t;
  buffer : Track_buffer.t;
  trace : Trace.sink;
  mutable cyl : int;
  mutable head : int;
  mutable injector : injector option;
  mutable health_probe : (unit -> drive_health) option;
  st : counters;
}

let create ?(buffer_policy = Track_buffer.Forward_discard) ?store ?(trace = Trace.null)
    ~profile ~clock () =
  let store =
    match store with
    | None -> Sector_store.create profile.Profile.geometry
    | Some s ->
      if Sector_store.geometry s <> profile.Profile.geometry then
        invalid_arg "Disk_sim.create: store geometry does not match profile";
      s
  in
  {
    profile;
    clock;
    store;
    buffer = Track_buffer.create buffer_policy;
    trace;
    cyl = 0;
    head = 0;
    injector = None;
    health_probe = None;
    st =
      {
        c_reads = 0;
        c_writes = 0;
        c_sectors_read = 0;
        c_sectors_written = 0;
        c_buffer_hits = 0;
        c_read_faults = 0;
        c_write_faults = 0;
        c_busy_ms = 0.;
      };
  }

let set_injector t injector = t.injector <- injector
let set_health_probe t probe = t.health_probe <- probe

let health t =
  match t.health_probe with None -> Ok_drive | Some probe -> probe ()

let profile t = t.profile
let geometry t = t.profile.Profile.geometry
let clock t = t.clock
let store t = t.store
let trace t = t.trace
let current_cylinder t = t.cyl
let current_track t = t.head

let stats t =
  {
    reads = t.st.c_reads;
    writes = t.st.c_writes;
    sectors_read = t.st.c_sectors_read;
    sectors_written = t.st.c_sectors_written;
    buffer_hits = t.st.c_buffer_hits;
    read_faults = t.st.c_read_faults;
    write_faults = t.st.c_write_faults;
    busy_ms = t.st.c_busy_ms;
  }

let reset_stats t =
  t.st.c_reads <- 0;
  t.st.c_writes <- 0;
  t.st.c_sectors_read <- 0;
  t.st.c_sectors_written <- 0;
  t.st.c_buffer_hits <- 0;
  t.st.c_read_faults <- 0;
  t.st.c_write_faults <- 0;
  t.st.c_busy_ms <- 0.

let sectors_per_track t = (geometry t).Geometry.sectors_per_track

let move_cost t ~cyl ~track =
  let p = t.profile in
  let seek = if cyl <> t.cyl then Profile.seek_ms p (abs (cyl - t.cyl)) else 0. in
  let switch = if track <> t.head then p.Profile.head_switch_ms else 0. in
  if cyl <> t.cyl then Float.max seek switch else switch

(* Rotational frame: sector s of global track T is under the head when the
   platter phase (in sector units) equals (s + skew * T) mod n. *)
let sector_position_at t ~track_index ~at =
  let n = sectors_per_track t in
  let sector_time = Profile.sector_ms t.profile in
  let phase = Float.rem (at /. sector_time) (float_of_int n) in
  let skewed = phase -. float_of_int (t.profile.Profile.track_skew * track_index mod n) in
  let pos = Float.rem skewed (float_of_int n) in
  if pos < 0. then pos +. float_of_int n else pos

(* Delay from a known rotational position: one subtraction, one
   remainder, one multiply — the closed form the eager allocator
   evaluates per candidate after computing the track's position once. *)
let rotational_delay_from t ~pos ~sector =
  let n = float_of_int (sectors_per_track t) in
  let sector_time = Profile.sector_ms t.profile in
  let dist = Float.rem (float_of_int sector -. pos) n in
  let dist = if dist < 0. then dist +. n else dist in
  dist *. sector_time

let rotational_delay_to t ~track_index ~sector ~at =
  rotational_delay_from t ~pos:(sector_position_at t ~track_index ~at) ~sector

(* Split [lba, lba+sectors) into per-track contiguous pieces. *)
let track_pieces t ~lba ~sectors =
  let g = geometry t in
  let n = g.Geometry.sectors_per_track in
  let rec go lba sectors acc =
    if sectors = 0 then List.rev acc
    else
      let addr = Geometry.addr_of_lba g lba in
      let in_track = n - addr.Geometry.sector in
      let piece = min sectors in_track in
      go (lba + piece) (sectors - piece) ((addr, piece) :: acc)
  in
  go lba sectors []

(* Mechanically access one within-track piece at the current clock time:
   position, rotate, transfer.  Advances the clock and moves the head.
   Returns the breakdown (no SCSI).  Traced as a leaf "disk.access" span;
   the seek share is in [seek_ms], the rotation share is the span's
   locate minus it. *)
let access_piece t (addr, piece) =
  let g = geometry t in
  let mv = move_cost t ~cyl:addr.Geometry.cyl ~track:addr.Geometry.track in
  let sp =
    if Trace.enabled t.trace then
      Trace.enter t.trace
        ~attrs:
          [
            ("cyl", string_of_int addr.Geometry.cyl);
            ("track", string_of_int addr.Geometry.track);
            ("sector", string_of_int addr.Geometry.sector);
            ("sectors", string_of_int piece);
            ("seek_ms", Printf.sprintf "%.6f" mv);
          ]
        "disk.access"
    else Io.no_span
  in
  let locate_start = Clock.now t.clock in
  Clock.advance t.clock mv;
  t.cyl <- addr.Geometry.cyl;
  t.head <- addr.Geometry.track;
  let track_index = Geometry.track_index g addr in
  let rot =
    rotational_delay_to t ~track_index ~sector:addr.Geometry.sector ~at:(Clock.now t.clock)
  in
  Clock.advance t.clock rot;
  let locate = Clock.now t.clock -. locate_start in
  let xfer = float_of_int piece *. Profile.sector_ms t.profile in
  Clock.advance t.clock xfer;
  let bd = Breakdown.add (Breakdown.of_locate locate) (Breakdown.of_transfer xfer) in
  Trace.exit t.trace ~bd sp;
  bd

let estimate_access t ~lba ~sectors =
  (* Simulate the pieces without committing: only the first piece's
     position matters for the estimate; later pieces stream with skew.  We
     estimate conservatively as first-piece positioning + total transfer +
     head switches between pieces. *)
  let g = geometry t in
  match track_pieces t ~lba ~sectors with
  | [] -> 0.
  | (addr, _) :: rest_pieces as pieces ->
    let mv = move_cost t ~cyl:addr.Geometry.cyl ~track:addr.Geometry.track in
    let track_index = Geometry.track_index g addr in
    let rot =
      rotational_delay_to t ~track_index ~sector:addr.Geometry.sector
        ~at:(Clock.now t.clock +. mv)
    in
    let xfer = float_of_int sectors *. Profile.sector_ms t.profile in
    let switches =
      float_of_int (List.length rest_pieces) *. t.profile.Profile.head_switch_ms
    in
    ignore pieces;
    mv +. rot +. xfer +. switches

let charge_scsi t scsi =
  if scsi then begin
    let o = t.profile.Profile.scsi_overhead_ms in
    let sp = if Trace.enabled t.trace then Trace.enter t.trace "disk.scsi" else Io.no_span in
    Clock.advance t.clock o;
    let bd = Breakdown.of_scsi o in
    Trace.exit t.trace ~bd sp;
    bd
  end
  else Breakdown.zero

let bump_busy t start = t.st.c_busy_ms <- t.st.c_busy_ms +. (Clock.now t.clock -. start)

(* Mechanical work of touching a range without any buffer interaction:
   what a faulted request costs — the head still seeks, rotates and
   attempts the transfer before the drive can report anything. *)
let mechanics t ~lba ~sectors bd =
  List.iter
    (fun piece -> bd := Breakdown.add !bd (access_piece t piece))
    (track_pieces t ~lba ~sectors)

let request_span t name ~lba ~sectors ~scsi =
  if Trace.enabled t.trace then
    Trace.enter t.trace
      ~attrs:
        [
          ("lba", string_of_int lba);
          ("sectors", string_of_int sectors);
          ("scsi", if scsi then "true" else "false");
        ]
      name
  else Io.no_span

let read_checked ?(scsi = true) t ~lba ~sectors =
  if sectors <= 0 then invalid_arg "Disk_sim.read: sectors must be positive";
  let g = geometry t in
  if not (Geometry.valid_lba g lba) || lba + sectors > Geometry.total_sectors g then
    invalid_arg "Disk_sim.read: range out of bounds";
  let sp = request_span t "disk.read" ~lba ~sectors ~scsi in
  let start = Clock.now t.clock in
  let bd = ref (charge_scsi t scsi) in
  let fault =
    match t.injector with None -> None | Some i -> i.on_read ~lba ~sectors
  in
  let finish outcome =
    t.st.c_reads <- t.st.c_reads + 1;
    t.st.c_sectors_read <- t.st.c_sectors_read + sectors;
    bump_busy t start;
    Trace.exit t.trace ~bd:!bd sp;
    (outcome, !bd)
  in
  match fault with
  | Some fault ->
    (* The drive retries internally for a revolution before giving up. *)
    t.st.c_read_faults <- t.st.c_read_faults + 1;
    Trace.incr t.trace "disk.read_faults";
    mechanics t ~lba ~sectors bd;
    Clock.advance t.clock (Profile.revolution_ms t.profile);
    let err =
      match fault with
      | Transient_read -> { error_lba = lba; transient = true }
      | Unreadable bad -> { error_lba = bad; transient = false }
    in
    finish (Error err)
  | None ->
    let pieces = track_pieces t ~lba ~sectors in
    let serve (addr, piece) =
      let track_index = Geometry.track_index g addr in
      if Track_buffer.hit t.buffer ~track_index ~sector:addr.Geometry.sector ~sectors:piece
      then begin
        (* Buffer hit: only the transfer off the buffer is paid. *)
        let hsp =
          if Trace.enabled t.trace then Trace.enter t.trace "disk.buffer_hit"
          else Io.no_span
        in
        let xfer = float_of_int piece *. Profile.sector_ms t.profile in
        Clock.advance t.clock xfer;
        t.st.c_buffer_hits <- t.st.c_buffer_hits + 1;
        Trace.incr t.trace "disk.buffer_hits";
        let hit_bd = Breakdown.of_transfer xfer in
        Trace.exit t.trace ~bd:hit_bd hsp;
        bd := Breakdown.add !bd hit_bd
      end
      else begin
        bd := Breakdown.add !bd (access_piece t (addr, piece));
        Track_buffer.note_read t.buffer ~track_index ~sector:addr.Geometry.sector
          ~sectors_per_track:g.Geometry.sectors_per_track
      end
    in
    List.iter serve pieces;
    (match Sector_store.ecc_error t.store ~lba ~sectors with
    | Some bad ->
      t.st.c_read_faults <- t.st.c_read_faults + 1;
      Trace.incr t.trace "disk.read_faults";
      finish (Error { error_lba = bad; transient = false })
    | None -> finish (Ok (Sector_store.read t.store ~lba ~sectors)))

let read ?scsi t ~lba ~sectors =
  match read_checked ?scsi t ~lba ~sectors with
  | Ok data, bd -> (data, bd)
  | Error e, _ -> raise (Media_failure e)

let write_checked ?(scsi = true) t ~lba buf =
  let g = geometry t in
  let sb = g.Geometry.sector_bytes in
  if Bytes.length buf = 0 || Bytes.length buf mod sb <> 0 then
    invalid_arg "Disk_sim.write: buffer must be a positive whole number of sectors";
  let sectors = Bytes.length buf / sb in
  if not (Geometry.valid_lba g lba) || lba + sectors > Geometry.total_sectors g then
    invalid_arg "Disk_sim.write: range out of bounds";
  let sp = request_span t "disk.write" ~lba ~sectors ~scsi in
  let start = Clock.now t.clock in
  let bd = ref (charge_scsi t scsi) in
  let fault =
    match t.injector with None -> None | Some i -> i.on_write ~lba ~sectors
  in
  let invalidate_all () =
    List.iter
      (fun (addr, _) ->
        Track_buffer.invalidate_track t.buffer ~track_index:(Geometry.track_index g addr))
      (track_pieces t ~lba ~sectors)
  in
  let finish outcome =
    t.st.c_writes <- t.st.c_writes + 1;
    t.st.c_sectors_written <- t.st.c_sectors_written + sectors;
    bump_busy t start;
    Trace.exit t.trace ~bd:!bd sp;
    (outcome, !bd)
  in
  match fault with
  | Some (Torn_write k) ->
    (* Power dies mid-transfer: the first [k] sectors reach the platter
       (each sector is atomic — written with its ECC or not at all), the
       rest keep their stale contents. *)
    t.st.c_write_faults <- t.st.c_write_faults + 1;
    Trace.incr t.trace "disk.write_faults";
    let k = max 0 (min k sectors) in
    invalidate_all ();
    if k > 0 then begin
      mechanics t ~lba ~sectors:k bd;
      Sector_store.write t.store ~lba (Bytes.sub buf 0 (k * sb))
    end;
    ignore (finish (Ok ()));
    raise Power_cut
  | Some (Unwritable bad) ->
    (* A grown defect surfaces during the write pass: sectors before the
       bad one are on the platter, the command fails. *)
    t.st.c_write_faults <- t.st.c_write_faults + 1;
    Trace.incr t.trace "disk.write_faults";
    invalidate_all ();
    let before = max 0 (min (bad - lba) sectors) in
    mechanics t ~lba ~sectors bd;
    if before > 0 then Sector_store.write t.store ~lba (Bytes.sub buf 0 (before * sb));
    finish (Error { error_lba = bad; transient = false })
  | Some Transient_write ->
    (* The command times out or is rejected before any sector lands: the
       platter is untouched, a retry may go through. *)
    t.st.c_write_faults <- t.st.c_write_faults + 1;
    Trace.incr t.trace "disk.write_faults";
    invalidate_all ();
    mechanics t ~lba ~sectors bd;
    finish (Error { error_lba = lba; transient = true })
  | None ->
    let pieces = track_pieces t ~lba ~sectors in
    let serve (addr, piece) =
      let track_index = Geometry.track_index g addr in
      Track_buffer.invalidate_track t.buffer ~track_index;
      bd := Breakdown.add !bd (access_piece t (addr, piece))
    in
    List.iter serve pieces;
    Sector_store.write t.store ~lba buf;
    finish (Ok ())

let write ?scsi t ~lba buf =
  match write_checked ?scsi t ~lba buf with
  | Ok (), bd -> bd
  | Error e, _ -> raise (Media_failure e)
