(** Tagged command queueing over {!Disk_sim}: the drive-side half of the
    async disk core.

    A queue holds many outstanding commands, each identified by a small
    integer {e tag}.  Commands arrive with a timestamp (possibly in the
    simulated future — an open-loop arrival process submits its whole
    schedule up front), the drive picks the next one to service according
    to its scheduling {!policy}, and the event loop advances the shared
    {!Vlog_util.Clock.t} to the next arrival whenever the queue goes
    idle.  Servicing itself reuses the synchronous {!Disk_sim} mechanics
    unchanged — seek, rotation, transfer and fault injection are exactly
    the depth-1 model — so a queue run at depth 1 is byte-identical to
    calling {!Disk_sim.read}/{!Disk_sim.write} directly.

    {2 Scheduling policies}

    - [Fifo]: strict arrival order (ties broken by tag).
    - [Elevator]: C-SCAN — serve the eligible command with the smallest
      cylinder at or ahead of the head in the sweep direction, wrapping
      to the lowest cylinder when the sweep runs out.
    - [Satf]: shortest access time first — the in-drive scheduler the
      paper's programmable disk enables.  Every eligible command is
      priced with {!Disk_sim.estimate_access} (positioning + rotation +
      transfer from the head's position {e now}) and the cheapest wins.
      Placed writes price themselves through their [estimate] callback,
      i.e. the eager allocator's own cost model.

    {2 Tag lifecycle}

    [submit] → pending → (dispatch, service) → completed → [poll].
    Each tag completes exactly once; {!poll} hands completions to the
    host in completion order and forgets them.  A command whose service
    attempt fails transiently {e while the stall probe reports the drive
    hanging} is re-queued with a [not_before] deadline instead of
    completing, so one hung tag stalls only itself — other tags keep
    dispatching around it. *)

type policy = Fifo | Elevator | Satf

val policy_to_string : policy -> string
val policy_of_string : string -> (policy, string) result

type outcome =
  | Data of Bytes.t  (** read payload *)
  | Wrote of int
      (** write done; the lba ([Write]) or physical block
          ([Placed_write]) it landed on *)
  | Failed of Disk_sim.media_error

type op =
  | Read of { lba : int; sectors : int }
  | Write of { lba : int; buf : Bytes.t }
  | Placed_write of {
      sectors : int;
      estimate : unit -> float option;
          (** pure preview of the mechanical cost the eager allocator
              would pay if the write were dispatched now ([None] = no
              free block); must not move the head or advance time *)
      service : unit -> (int, Disk_sim.media_error) result * Vlog_util.Breakdown.t;
          (** perform the placement and the media write(s) now, head
              wherever the scheduler left it; returns the physical block
              chosen.  Runs the device's own retry/remap policy. *)
    }
      (** A write whose location is chosen {e at dispatch time} — the
          programmable-disk premise: the later the drive binds a write to
          a sector, the nearer the head that sector can be. *)
  | Hosted of {
      cost : unit -> float;
          (** pure preview of the mechanical cost if dispatched now — the
              SATF comparator; must not move the head or advance time *)
      cylinder : unit -> int;  (** target cylinder for the elevator *)
      service : unit -> outcome * Vlog_util.Breakdown.t;
          (** perform the command now, advancing the shared clock.  Runs
              the host layer's own retry/remap/failure policy; a
              non-transient [Failed] outcome is final, while a transient
              one goes through the queue's stall/backoff machinery like
              any native command (the closure runs again on
              re-dispatch). *)
    }
      (** A host-defined command: the full device-level logic of a volume
          leg (VLD placement + map commit, regular-disk remap) runs as a
          schedulable tagged command. *)

type completion = {
  tag : int;
  outcome : outcome;
  submitted : float;  (** arrival time (ms, simulated) *)
  started : float;  (** dispatch time of the attempt that completed *)
  finished : float;
  queue_wait : float;  (** [started - submitted]: time spent queued *)
  bd : Vlog_util.Breakdown.t;  (** mechanical cost of the final attempt *)
}

type t

val create :
  ?policy:policy ->
  ?stall_probe:(unit -> float option) ->
  ?max_stall_retries:int ->
  ?retry_backoff:float ->
  ?retry_jitter:Vlog_util.Prng.t ->
  ?stall_budget_ms:float ->
  disk:Disk_sim.t ->
  unit ->
  t
(** [policy] defaults to [Fifo].  [stall_probe] reports the absolute
    deadline until which the drive is hanging ([None] = not hanging);
    a transiently-failed service attempt while hanging re-queues the tag
    with [not_before] = that deadline instead of completing it.
    [max_stall_retries] (default 64) bounds the re-queues of one tag
    before it completes as [Failed].

    [retry_backoff] (off by default) arms seeded retry-with-backoff for
    transient failures the stall probe does {e not} claim (a flaky
    drive, not a hanging one): the tag is re-queued [base * 2^attempt]
    ms out, the exponent capped at 6, multiplied by a deterministic
    jitter factor in [0.75, 1.25) drawn from [retry_jitter] when given.
    [stall_budget_ms] is the per-op stall budget: a requeue (stall or
    retry) that would push the tag past [submitted + budget] instead
    completes it as [Failed], so no tag can be parked unboundedly even
    while the drive keeps hanging.  The queue observes queue-wait and
    depth through the disk's trace sink. *)

val policy : t -> policy
val disk : t -> Disk_sim.t

val submit : ?at:float -> ?background:bool -> ?owner:string -> t -> op -> int
(** Enqueue a command and return its tag.  [at] (default now) is the
    arrival timestamp; it may lie in the simulated future (open-loop
    arrivals) but not in the past.  [background] (default false) marks a
    low-priority tag: it dispatches only when no foreground command is
    eligible (rebuild copies, scrubbing).  [owner] attributes the tag to
    a tenant — each completion then feeds the [tenant.<owner>.lat]
    histogram and [tenant.<owner>.ops] counter of the disk's trace sink,
    the raw material for per-tenant fairness reporting. *)

val pending : t -> int
(** Commands submitted but not yet completed (queued or stalled). *)

val depth : t -> int
(** Commands whose arrival time has been reached but which have not yet
    completed — the queue depth a host would observe now. *)

val step : t -> bool
(** Service exactly one command: if none is eligible now, first advance
    the clock to the earliest arrival / stall deadline.  Returns [false]
    when the queue is empty (nothing pending at any time). *)

val poll : t -> (int * completion) list
(** Completions since the last poll, in completion order.  Each tag is
    reported exactly once. *)

val drain : t -> (int * completion) list
(** Barrier: {!step} until nothing is pending, then {!poll}. *)

type stats = {
  submitted : int;
  completed : int;
  stall_requeues : int;  (** service attempts re-queued by the stall probe *)
  retry_requeues : int;
      (** service attempts re-queued by [retry_backoff] (flaky-drive
          retries, as opposed to hang stalls) *)
  max_depth : int;  (** high-water mark of {!depth} at dispatch points *)
}

val stats : t -> stats
