(* The platter contents live in per-track chunks allocated on first
   touch: a store models a ~24 MB disk, and experiment rigs create (and
   drop) many of them, so zeroing the whole medium eagerly would cost
   more than some entire experiment runs.  An untouched track reads as
   zeroes, exactly as the eager allocation did. *)
type t = {
  geometry : Geometry.t;
  track_bytes : int;
  chunks : Bytes.t array; (* per track; [Bytes.empty] = never touched *)
  written : Bytes.t;
  rotten : Bytes.t; (* sectors whose media ECC no longer matches the data *)
}

let create geometry =
  let sectors = Geometry.total_sectors geometry in
  let spt = geometry.Geometry.sectors_per_track in
  {
    geometry;
    track_bytes = spt * geometry.Geometry.sector_bytes;
    chunks = Array.make (Geometry.total_tracks geometry) Bytes.empty;
    written = Bytes.make sectors '\000';
    rotten = Bytes.make sectors '\000';
  }

let geometry t = t.geometry

let chunk t track =
  let c = t.chunks.(track) in
  if Bytes.length c > 0 then c
  else begin
    let c = Bytes.make t.track_bytes '\000' in
    t.chunks.(track) <- c;
    c
  end

(* Apply [f chunk_opt off len dst_off] to each per-track span of the
   sector range; [chunk_opt] is [None] for untouched tracks. *)
let iter_spans t ~lba ~sectors f =
  let sb = t.geometry.Geometry.sector_bytes in
  let spt = t.geometry.Geometry.sectors_per_track in
  let s = ref lba in
  while !s < lba + sectors do
    let track = !s / spt in
    let first = !s mod spt in
    let n = min (spt - first) (lba + sectors - !s) in
    let c = t.chunks.(track) in
    f ~track (if Bytes.length c > 0 then Some c else None) ~off:(first * sb)
      ~len:(n * sb)
      ~dst_off:((!s - lba) * sb);
    s := !s + n
  done

let check_range t ~lba ~sectors =
  let total = Geometry.total_sectors t.geometry in
  if lba < 0 || sectors < 0 || lba + sectors > total then
    invalid_arg "Sector_store: range out of bounds"

let write t ~lba buf =
  let sb = t.geometry.Geometry.sector_bytes in
  if Bytes.length buf mod sb <> 0 then
    invalid_arg "Sector_store.write: buffer is not a whole number of sectors";
  let sectors = Bytes.length buf / sb in
  check_range t ~lba ~sectors;
  iter_spans t ~lba ~sectors (fun ~track _ ~off ~len ~dst_off ->
      Bytes.blit buf dst_off (chunk t track) off len);
  Bytes.fill t.written lba sectors '\001';
  (* A fresh write lays down data and ECC together. *)
  Bytes.fill t.rotten lba sectors '\000'

let read t ~lba ~sectors =
  check_range t ~lba ~sectors;
  let sb = t.geometry.Geometry.sector_bytes in
  let out = Bytes.create (sectors * sb) in
  iter_spans t ~lba ~sectors (fun ~track:_ c ~off ~len ~dst_off ->
      match c with
      | Some c -> Bytes.blit c off out dst_off len
      | None -> Bytes.fill out dst_off len '\000');
  out

let written t ~lba =
  check_range t ~lba ~sectors:1;
  Bytes.get t.written lba = '\001'

let set_byte t i v =
  let sb = t.geometry.Geometry.sector_bytes in
  let spt = t.geometry.Geometry.sectors_per_track in
  let track = i / (spt * sb) in
  Bytes.set (chunk t track) (i mod (spt * sb)) v

let get_byte t i =
  let sb = t.geometry.Geometry.sector_bytes in
  let spt = t.geometry.Geometry.sectors_per_track in
  let track = i / (spt * sb) in
  let c = t.chunks.(track) in
  if Bytes.length c = 0 then '\000' else Bytes.get c (i mod (spt * sb))

let corrupt t ~lba ~sectors prng =
  check_range t ~lba ~sectors;
  let sb = t.geometry.Geometry.sector_bytes in
  for i = lba * sb to ((lba + sectors) * sb) - 1 do
    set_byte t i (Char.chr (Vlog_util.Prng.int prng 256))
  done;
  Bytes.fill t.written lba sectors '\001';
  (* The head physically wrote the garbage, so its sector ECC is valid. *)
  Bytes.fill t.rotten lba sectors '\000'

let rot t ~lba ~sectors prng =
  check_range t ~lba ~sectors;
  let sb = t.geometry.Geometry.sector_bytes in
  for s = lba to lba + sectors - 1 do
    (* Flip one random bit per sector: enough to invalidate the ECC. *)
    let byte = (s * sb) + Vlog_util.Prng.int prng sb in
    let bit = Vlog_util.Prng.int prng 8 in
    set_byte t byte (Char.chr (Char.code (get_byte t byte) lxor (1 lsl bit)));
    Bytes.set t.rotten s '\001'
  done

let ecc_error t ~lba ~sectors =
  check_range t ~lba ~sectors;
  let rec go s =
    if s >= lba + sectors then None
    else if Bytes.get t.rotten s = '\001' then Some s
    else go (s + 1)
  in
  go lba

let snapshot t =
  {
    t with
    chunks =
      Array.map (fun c -> if Bytes.length c = 0 then c else Bytes.copy c) t.chunks;
    written = Bytes.copy t.written;
    rotten = Bytes.copy t.rotten;
  }
