(* The platter contents live in per-track chunks allocated on first
   touch: a store models a ~24 MB disk, and experiment rigs create (and
   drop) many of them, so zeroing the whole medium eagerly would cost
   more than some entire experiment runs.  An untouched track reads as
   zeroes, exactly as the eager allocation did. *)
type t = {
  geometry : Geometry.t;
  track_bytes : int;
  chunks : Bytes.t array; (* per track; [Bytes.empty] = never touched *)
  written : Bytes.t;
  rotten : Bytes.t; (* sectors whose media ECC no longer matches the data *)
}

let create geometry =
  let sectors = Geometry.total_sectors geometry in
  let spt = geometry.Geometry.sectors_per_track in
  {
    geometry;
    track_bytes = spt * geometry.Geometry.sector_bytes;
    chunks = Array.make (Geometry.total_tracks geometry) Bytes.empty;
    written = Bytes.make sectors '\000';
    rotten = Bytes.make sectors '\000';
  }

let geometry t = t.geometry

let chunk t track =
  let c = t.chunks.(track) in
  if Bytes.length c > 0 then c
  else begin
    let c = Bytes.make t.track_bytes '\000' in
    t.chunks.(track) <- c;
    c
  end

(* Apply [f chunk_opt off len dst_off] to each per-track span of the
   sector range; [chunk_opt] is [None] for untouched tracks. *)
let iter_spans t ~lba ~sectors f =
  let sb = t.geometry.Geometry.sector_bytes in
  let spt = t.geometry.Geometry.sectors_per_track in
  let s = ref lba in
  while !s < lba + sectors do
    let track = !s / spt in
    let first = !s mod spt in
    let n = min (spt - first) (lba + sectors - !s) in
    let c = t.chunks.(track) in
    f ~track (if Bytes.length c > 0 then Some c else None) ~off:(first * sb)
      ~len:(n * sb)
      ~dst_off:((!s - lba) * sb);
    s := !s + n
  done

let check_range t ~lba ~sectors =
  let total = Geometry.total_sectors t.geometry in
  if lba < 0 || sectors < 0 || lba + sectors > total then
    invalid_arg "Sector_store: range out of bounds"

let write t ~lba buf =
  let sb = t.geometry.Geometry.sector_bytes in
  if Bytes.length buf mod sb <> 0 then
    invalid_arg "Sector_store.write: buffer is not a whole number of sectors";
  let sectors = Bytes.length buf / sb in
  check_range t ~lba ~sectors;
  iter_spans t ~lba ~sectors (fun ~track _ ~off ~len ~dst_off ->
      Bytes.blit buf dst_off (chunk t track) off len);
  Bytes.fill t.written lba sectors '\001';
  (* A fresh write lays down data and ECC together. *)
  Bytes.fill t.rotten lba sectors '\000'

let read t ~lba ~sectors =
  check_range t ~lba ~sectors;
  let sb = t.geometry.Geometry.sector_bytes in
  let out = Bytes.create (sectors * sb) in
  iter_spans t ~lba ~sectors (fun ~track:_ c ~off ~len ~dst_off ->
      match c with
      | Some c -> Bytes.blit c off out dst_off len
      | None -> Bytes.fill out dst_off len '\000');
  out

let written t ~lba =
  check_range t ~lba ~sectors:1;
  Bytes.get t.written lba = '\001'

let set_byte t i v =
  let sb = t.geometry.Geometry.sector_bytes in
  let spt = t.geometry.Geometry.sectors_per_track in
  let track = i / (spt * sb) in
  Bytes.set (chunk t track) (i mod (spt * sb)) v

let get_byte t i =
  let sb = t.geometry.Geometry.sector_bytes in
  let spt = t.geometry.Geometry.sectors_per_track in
  let track = i / (spt * sb) in
  let c = t.chunks.(track) in
  if Bytes.length c = 0 then '\000' else Bytes.get c (i mod (spt * sb))

let corrupt t ~lba ~sectors prng =
  check_range t ~lba ~sectors;
  let sb = t.geometry.Geometry.sector_bytes in
  for i = lba * sb to ((lba + sectors) * sb) - 1 do
    set_byte t i (Char.chr (Vlog_util.Prng.int prng 256))
  done;
  Bytes.fill t.written lba sectors '\001';
  (* The head physically wrote the garbage, so its sector ECC is valid. *)
  Bytes.fill t.rotten lba sectors '\000'

let rot t ~lba ~sectors prng =
  check_range t ~lba ~sectors;
  let sb = t.geometry.Geometry.sector_bytes in
  for s = lba to lba + sectors - 1 do
    (* Flip one random bit per sector: enough to invalidate the ECC. *)
    let byte = (s * sb) + Vlog_util.Prng.int prng sb in
    let bit = Vlog_util.Prng.int prng 8 in
    set_byte t byte (Char.chr (Char.code (get_byte t byte) lxor (1 lsl bit)));
    Bytes.set t.rotten s '\001'
  done

let ecc_error t ~lba ~sectors =
  check_range t ~lba ~sectors;
  let rec go s =
    if s >= lba + sectors then None
    else if Bytes.get t.rotten s = '\001' then Some s
    else go (s + 1)
  in
  go lba

(* On-disk image format (vlsim fsck/mkimage): a fixed magic line, the
   four geometry fields, the written/rotten maps, then one presence byte
   per track followed by the chunk bytes of touched tracks.  Everything
   little-endian, nothing compressed — images are a test vehicle, not an
   archival format. *)
let image_magic = "VLSIMG1\n"

let save t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc image_magic;
      let w32 v =
        let b = Bytes.create 4 in
        Bytes.set_int32_le b 0 (Int32.of_int v);
        output_bytes oc b
      in
      let g = t.geometry in
      w32 g.Geometry.sector_bytes;
      w32 g.Geometry.sectors_per_track;
      w32 g.Geometry.tracks_per_cylinder;
      w32 g.Geometry.cylinders;
      output_bytes oc t.written;
      output_bytes oc t.rotten;
      Array.iter
        (fun c ->
          if Bytes.length c = 0 then output_char oc '\000'
          else begin
            output_char oc '\001';
            output_bytes oc c
          end)
        t.chunks)

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let fail msg = failwith (Printf.sprintf "Sector_store.load: %s: %s" path msg) in
      let magic = really_input_string ic (String.length image_magic) in
      if magic <> image_magic then fail "bad magic";
      let r32 () =
        let b = Bytes.create 4 in
        really_input ic b 0 4;
        Int32.to_int (Bytes.get_int32_le b 0)
      in
      let sector_bytes = r32 () in
      let sectors_per_track = r32 () in
      let tracks_per_cylinder = r32 () in
      let cylinders = r32 () in
      let geometry =
        try
          Geometry.v ~sector_bytes ~sectors_per_track ~tracks_per_cylinder
            ~cylinders
        with Invalid_argument m -> fail m
      in
      let t = create geometry in
      really_input ic t.written 0 (Bytes.length t.written);
      really_input ic t.rotten 0 (Bytes.length t.rotten);
      Array.iteri
        (fun i _ ->
          match input_char ic with
          | '\000' -> ()
          | '\001' ->
            let c = Bytes.create t.track_bytes in
            really_input ic c 0 t.track_bytes;
            t.chunks.(i) <- c
          | _ -> fail "bad track presence flag"
          | exception End_of_file -> fail "truncated image")
        t.chunks;
      t)

let snapshot t =
  {
    t with
    chunks =
      Array.map (fun c -> if Bytes.length c = 0 then c else Bytes.copy c) t.chunks;
    written = Bytes.copy t.written;
    rotten = Bytes.copy t.rotten;
  }
