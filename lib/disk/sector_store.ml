type t = {
  geometry : Geometry.t;
  data : Bytes.t;
  written : Bytes.t;
  rotten : Bytes.t; (* sectors whose media ECC no longer matches the data *)
}

let create geometry =
  let sectors = Geometry.total_sectors geometry in
  {
    geometry;
    data = Bytes.make (sectors * geometry.Geometry.sector_bytes) '\000';
    written = Bytes.make sectors '\000';
    rotten = Bytes.make sectors '\000';
  }

let geometry t = t.geometry

let check_range t ~lba ~sectors =
  let total = Geometry.total_sectors t.geometry in
  if lba < 0 || sectors < 0 || lba + sectors > total then
    invalid_arg "Sector_store: range out of bounds"

let write t ~lba buf =
  let sb = t.geometry.Geometry.sector_bytes in
  if Bytes.length buf mod sb <> 0 then
    invalid_arg "Sector_store.write: buffer is not a whole number of sectors";
  let sectors = Bytes.length buf / sb in
  check_range t ~lba ~sectors;
  Bytes.blit buf 0 t.data (lba * sb) (Bytes.length buf);
  Bytes.fill t.written lba sectors '\001';
  (* A fresh write lays down data and ECC together. *)
  Bytes.fill t.rotten lba sectors '\000'

let read t ~lba ~sectors =
  check_range t ~lba ~sectors;
  let sb = t.geometry.Geometry.sector_bytes in
  Bytes.sub t.data (lba * sb) (sectors * sb)

let written t ~lba =
  check_range t ~lba ~sectors:1;
  Bytes.get t.written lba = '\001'

let corrupt t ~lba ~sectors prng =
  check_range t ~lba ~sectors;
  let sb = t.geometry.Geometry.sector_bytes in
  for i = lba * sb to ((lba + sectors) * sb) - 1 do
    Bytes.set t.data i (Char.chr (Vlog_util.Prng.int prng 256))
  done;
  Bytes.fill t.written lba sectors '\001';
  (* The head physically wrote the garbage, so its sector ECC is valid. *)
  Bytes.fill t.rotten lba sectors '\000'

let rot t ~lba ~sectors prng =
  check_range t ~lba ~sectors;
  let sb = t.geometry.Geometry.sector_bytes in
  for s = lba to lba + sectors - 1 do
    (* Flip one random bit per sector: enough to invalidate the ECC. *)
    let byte = (s * sb) + Vlog_util.Prng.int prng sb in
    let bit = Vlog_util.Prng.int prng 8 in
    Bytes.set t.data byte (Char.chr (Char.code (Bytes.get t.data byte) lxor (1 lsl bit)));
    Bytes.set t.rotten s '\001'
  done

let ecc_error t ~lba ~sectors =
  check_range t ~lba ~sectors;
  let rec go s =
    if s >= lba + sectors then None
    else if Bytes.get t.rotten s = '\001' then Some s
    else go (s + 1)
  in
  go lba

let snapshot t =
  {
    geometry = t.geometry;
    data = Bytes.copy t.data;
    written = Bytes.copy t.written;
    rotten = Bytes.copy t.rotten;
  }
