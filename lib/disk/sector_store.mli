(** Byte-addressed backing store for the simulated platters (the analogue
    of the paper's 24 MB kernel ramdisk).

    The store holds the raw contents of every sector and tracks which
    sectors have ever been written, which lets recovery code distinguish
    "never written" from "holds stale bytes" the way a real scan would
    (via checksums) without paying for one in every test. *)

type t

val create : Geometry.t -> t

val geometry : t -> Geometry.t

val write : t -> lba:int -> Bytes.t -> unit
(** [write t ~lba buf] stores [buf] starting at sector [lba].  [buf] must
    be a whole number of sectors and fit in the store. *)

val read : t -> lba:int -> sectors:int -> Bytes.t
(** Fresh buffer with the contents of [sectors] sectors from [lba].
    Never-written sectors read as zeroes. *)

val written : t -> lba:int -> bool
(** Whether sector [lba] has ever been written. *)

val corrupt : t -> lba:int -> sectors:int -> Vlog_util.Prng.t -> unit
(** Overwrite the given range with random bytes — fault injection for
    recovery tests (models a torn multi-sector write).  The garbage was
    physically written by the head, so the per-sector media ECC is valid:
    only content-level checks (magic, checksum) can reject it. *)

val rot : t -> lba:int -> sectors:int -> Vlog_util.Prng.t -> unit
(** Silent media decay: flip one random bit in each sector of the range
    {e without} refreshing its ECC.  The drive detects the mismatch on the
    next read of the sector ({!ecc_error}); until then nothing notices. *)

val ecc_error : t -> lba:int -> sectors:int -> int option
(** First sector in the range whose ECC no longer matches its data
    (i.e. it has {!rot}ted since it was last written), if any. *)

val snapshot : t -> t
(** Deep copy; used by crash tests to freeze the platter state at the
    moment of a simulated power failure. *)

val save : t -> string -> unit
(** Serialize the store (geometry, written/rotten maps, touched tracks)
    to a file, for [vlsim fsck --image] and friends. *)

val load : string -> t
(** Inverse of {!save}.  Raises [Failure] on a malformed image. *)
