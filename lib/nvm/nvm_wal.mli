(** NVM write-ahead staging tier.

    Fronts any {!Blockdev.Device.t} with a byte-addressable NVM log
    ({!Nvm_sim}): a synchronous small write appends one CRC-sealed
    record to the log and completes once the NVM persist barrier
    returns — memory cost, not rotational cost.  A background destager
    drains staged blocks to the backing device through its queue
    interface (eager placement when the device is a VLD), throttled by a
    [destage_util] duty cycle exactly like the volume layer's
    [rebuild_util].  After a crash, {!recover} replays every committed
    record over the disk image {e before} the file system's own
    recovery mounts, so the FS never knows the staging tier exists.

    {2 Persistence boundary}

    A write's durability point is the persist barrier inside
    {!Blockdev.Device.t.write}: once the call returns [Ok], the record
    is in the NVM's persisted domain and survives any power cut.
    Records torn by a cut mid-persist belong to writes that never
    returned — losing them is legal, and the CRC scan truncates them.
    The log is reset (head advanced past every record) only after all
    its entries have destaged to the backing device, so replay after a
    crash mid-destage rewrites some blocks that already landed —
    harmless, because records replay in sequence order and the newest
    value wins.

    {2 Log layout}

    A 32-byte CRC-sealed header holds [base_seq]; records follow
    contiguously.  When every staged entry has destaged, the log resets:
    the header is rewritten with the next sequence number and appending
    restarts at the top.  Replay scans records from the top, skips any
    with [seq < base_seq] (stale, from before the last reset), stops on
    the first CRC/magic failure (torn tail) or sequence regression, and
    writes the survivors to the backing device in order.  A write that
    no longer fits the region first drains the log inline — NVM-full
    backpressure: under sustained overload every op pays the disk cost
    it was hiding, degrading to the backing device's own throughput. *)

(** The on-NVM record codec, exposed for property tests. *)
module Record : sig
  type t = { seq : int64; block : int; payload : Bytes.t }

  val encoded_size : payload_len:int -> int
  val encode : t -> Bytes.t

  val decode : Bytes.t -> pos:int -> (t * int) option
  (** [decode buf ~pos] is [Some (record, next_pos)], or [None] when the
      bytes at [pos] are not a whole, CRC-clean record (truncated tail,
      torn prefix, flipped bit, foreign data). *)
end

type config = {
  destage_util : float;
      (** fraction of an idle window the destager may consume (0
          disables background destaging; drain and backpressure still
          work) *)
  log_bytes : int option;
      (** cap the log region below the NVM size — [None] uses the whole
          device.  Tiny caps exercise the backpressure path. *)
  max_stage_run : int;
      (** multi-block writes of at most this many blocks are staged
          (one record per block, a single persist); larger runs drain
          the log and bypass straight to the backing device *)
  destage_batch : int;
      (** staged entries submitted to the backing device per
          submit/drain window *)
}

val default_config : config
(** [destage_util = 0.5], whole-device log, [max_stage_run = 4],
    [destage_batch = 8]. *)

type t

val create : ?config:config -> nvm:Nvm_sim.t -> inner:Blockdev.Device.t -> unit -> t
(** Format a fresh (empty) log on [nvm] and stage writes for [inner]. *)

type replay_report = {
  rr_replayed : int;  (** committed records written back to the device *)
  rr_stale : int;  (** records from before the last reset, skipped *)
  rr_truncated : bool;
      (** the scan ended on an undecodable record — a torn tail — rather
          than cleanly *)
}

val recover :
  ?config:config ->
  nvm:Nvm_sim.t ->
  inner:Blockdev.Device.t ->
  unit ->
  (t * replay_report, Blockdev.Device.io_error) result
(** Bring the pair up after a crash: replay every committed record from
    [nvm]'s persisted image onto [inner] in sequence order, then reset
    the log.  Run this before mounting the file system.  Replay is
    idempotent: recovering twice leaves the same device image as
    recovering once. *)

val replay_scan : Bytes.t -> Record.t list * replay_report
(** Pure scan of a persisted NVM image (see {!Nvm_sim.snapshot}): the
    committed records replay would apply, in order.  Exposed for tests
    and [vlsim nvm status]. *)

val device : t -> Blockdev.Device.t
(** The staged device: same blocks as the backing device, write-ahead
    semantics as above.  [idle dt] first runs the destager inside its
    duty-cycle budget, then passes the remaining window down (a VLD
    still gets its compaction time). *)

val inner : t -> Blockdev.Device.t
val nvm : t -> Nvm_sim.t

val pump : t -> deadline:float -> unit
(** Give the destager the window from now until [deadline] (absolute
    simulated ms), of which it may use [destage_util].  It destages
    entries while its last-cost estimate fits the remaining budget —
    same deadline-fitting, halving-decay scheme as the volume rebuild. *)

val drain : t -> (unit, Blockdev.Device.io_error) result
(** Destage everything unthrottled and reset the log.  [Error] when the
    backing device permanently rejects a staged block (the entry stays
    in the log for the next recovery). *)

type status = {
  st_entries : int;  (** records currently staged in the log *)
  st_destaged : int;  (** of those, already written to the backing device *)
  st_log_used : int;  (** bytes of log region in use (header included) *)
  st_log_capacity : int;  (** bytes of log region *)
  st_base_seq : int64;
  st_next_seq : int64;
}

val status : t -> status
