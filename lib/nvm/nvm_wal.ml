open Vlog_util
module Device = Blockdev.Device

(* ---- On-NVM codec -------------------------------------------------- *)

(* Region layout: a 32-byte header (magic, base_seq, CRC) followed by
   records appended contiguously.  Every structure is sealed with the
   word-FNV checksum over everything before it, so replay can tell a
   committed record from a torn tail or the residue of a previous log
   generation. *)

let header_bytes = 32
let hdr_magic = "WALH"
let rec_magic = "WALR"
let rec_hdr = 28 (* magic 4 + seq 8 + block 8 + payload_len 8 *)

let encode_header ~base_seq =
  let buf = Bytes.make header_bytes '\000' in
  Bytes.blit_string hdr_magic 0 buf 0 4;
  Bytes.set_int64_le buf 4 base_seq;
  Bytes.set_int64_le buf 12 (Checksum.add_words Checksum.empty buf ~pos:0 ~len:12);
  buf

let parse_header img =
  if Bytes.length img < header_bytes then None
  else if Bytes.sub_string img 0 4 <> hdr_magic then None
  else
    let crc = Checksum.add_words Checksum.empty img ~pos:0 ~len:12 in
    if Bytes.get_int64_le img 12 <> crc then None
    else Some (Bytes.get_int64_le img 4)

module Record = struct
  type t = { seq : int64; block : int; payload : Bytes.t }

  let encoded_size ~payload_len = rec_hdr + payload_len + 8

  let encode { seq; block; payload } =
    let plen = Bytes.length payload in
    let buf = Bytes.create (encoded_size ~payload_len:plen) in
    Bytes.blit_string rec_magic 0 buf 0 4;
    Bytes.set_int64_le buf 4 seq;
    Bytes.set_int64_le buf 12 (Int64.of_int block);
    Bytes.set_int64_le buf 20 (Int64.of_int plen);
    Bytes.blit payload 0 buf rec_hdr plen;
    let crc = Checksum.add_words Checksum.empty buf ~pos:0 ~len:(rec_hdr + plen) in
    Bytes.set_int64_le buf (rec_hdr + plen) crc;
    buf

  let decode buf ~pos =
    let total = Bytes.length buf in
    if pos < 0 || pos + rec_hdr + 8 > total then None
    else if Bytes.sub_string buf pos 4 <> rec_magic then None
    else
      let seq = Bytes.get_int64_le buf (pos + 4) in
      let block = Bytes.get_int64_le buf (pos + 12) in
      let plen = Bytes.get_int64_le buf (pos + 20) in
      if
        Int64.compare block 0L < 0
        || Int64.compare plen 1L < 0
        || Int64.compare plen (Int64.of_int total) > 0
      then None
      else
        let plen = Int64.to_int plen in
        let size = encoded_size ~payload_len:plen in
        if pos + size > total then None
        else
          let crc = Checksum.add_words Checksum.empty buf ~pos ~len:(rec_hdr + plen) in
          if Bytes.get_int64_le buf (pos + rec_hdr + plen) <> crc then None
          else
            Some
              ( { seq; block = Int64.to_int block; payload = Bytes.sub buf (pos + rec_hdr) plen },
                pos + size )
end

(* ---- Replay scan --------------------------------------------------- *)

type replay_report = { rr_replayed : int; rr_stale : int; rr_truncated : bool }

(* Committed records in a persisted image, in append (= sequence) order.
   An unreadable header degrades to [base_seq = 0]: replaying records
   from before the last reset is idempotent — they all destaged before
   the header rewrite began, and every newer value of those blocks is
   still in the log with a higher sequence number, so it replays after
   and wins. *)
let scan img =
  let base = match parse_header img with Some b -> Some b | None -> None in
  let base_seq = Option.value base ~default:0L in
  let recs = ref [] in
  let stale = ref 0 in
  let truncated = ref false in
  let prev = ref Int64.min_int in
  let pos = ref header_bytes in
  let stop = ref false in
  while not !stop do
    match Record.decode img ~pos:!pos with
    | None ->
      (* Record-like bytes that fail the seal are a torn tail; anything
         else (zeroes, overwritten residue) is just the end of the log. *)
      if
        !pos + 4 <= Bytes.length img
        && Bytes.sub_string img !pos 4 = rec_magic
      then truncated := true;
      stop := true
    | Some (r, next) ->
      if Int64.compare r.Record.seq base_seq < 0 then begin
        incr stale;
        pos := next
      end
      else if Int64.compare r.Record.seq !prev <= 0 then stop := true
      else begin
        recs := r :: !recs;
        prev := r.Record.seq;
        pos := next
      end
  done;
  ( base,
    List.rev !recs,
    { rr_replayed = List.length !recs; rr_stale = !stale; rr_truncated = !truncated } )

let replay_scan img =
  let _, recs, report = scan img in
  (recs, report)

(* ---- The staging tier ---------------------------------------------- *)

type config = {
  destage_util : float;
  log_bytes : int option;
  max_stage_run : int;
  destage_batch : int;
}

let default_config =
  { destage_util = 0.5; log_bytes = None; max_stage_run = 4; destage_batch = 8 }

(* A staged entry's payload lives only in the NVM log; destage and
   overlay reads fetch it from there (and pay the NVM load for it). *)
type entry = { e_block : int; e_off : int; e_len : int }

type t = {
  cfg : config;
  nvm : Nvm_sim.t;
  inner : Device.t;
  mutable tail : int;  (* append offset *)
  mutable base_seq : int64;
  mutable next_seq : int64;
  pending : entry Queue.t;  (* staged, not yet destaged, oldest first *)
  mutable retry : entry list;  (* destage re-attempts, ahead of [pending] *)
  overlay : (int, int) Hashtbl.t;  (* block -> payload offset of newest record *)
  mutable destaged : int;  (* entries destaged since the last reset *)
  mutable cost_est : float;  (* last observed destage cost, ms *)
}

let log_limit t =
  match t.cfg.log_bytes with
  | Some b -> min b (Nvm_sim.size t.nvm)
  | None -> Nvm_sim.size t.nvm

let inner t = t.inner
let nvm t = t.nvm

let reset_log t =
  assert (Queue.is_empty t.pending && t.retry = []);
  t.base_seq <- t.next_seq;
  Nvm_sim.write t.nvm ~off:0 (encode_header ~base_seq:t.base_seq);
  Nvm_sim.persist t.nvm;
  t.tail <- header_bytes;
  Hashtbl.reset t.overlay;
  t.destaged <- 0

let create ?(config = default_config) ~nvm ~inner () =
  let limit =
    match config.log_bytes with
    | Some b -> min b (Nvm_sim.size nvm)
    | None -> Nvm_sim.size nvm
  in
  if limit < header_bytes + Record.encoded_size ~payload_len:inner.Device.block_bytes
  then invalid_arg "Nvm_wal.create: log region smaller than one record";
  let t =
    {
      cfg = config;
      nvm;
      inner;
      tail = header_bytes;
      base_seq = 1L;
      next_seq = 1L;
      pending = Queue.create ();
      retry = [];
      overlay = Hashtbl.create 64;
      destaged = 0;
      cost_est = 1.0;
    }
  in
  Nvm_sim.write nvm ~off:0 (encode_header ~base_seq:t.base_seq);
  Nvm_sim.persist nvm;
  t

let remaining t = List.length t.retry + Queue.length t.pending

let take_next t =
  match t.retry with
  | e :: rest ->
    t.retry <- rest;
    Some e
  | [] -> Queue.take_opt t.pending

(* Destage up to [limit] entries through the backing device's queue
   interface: one submit window, one drain.  On the first failed ack the
   failing entry and everything after it go back to the head of the
   line untouched — re-destaging an already-landed entry just rewrites
   the same bytes, and keeping the window's order means an older record
   can never overtake a newer one for the same block. *)
let destage_window t ~limit =
  let batch = ref [] in
  let n = ref 0 in
  while !n < limit && remaining t > 0 do
    match take_next t with
    | None -> ()
    | Some e ->
      batch := e :: !batch;
      incr n
  done;
  let batch = List.rev !batch in
  if batch = [] then Ok 0
  else begin
    let tagged =
      List.map
        (fun e ->
          let payload = Nvm_sim.read t.nvm ~off:e.e_off ~len:e.e_len in
          (t.inner.Device.submit (Device.Write (e.e_block, payload)), e))
        batch
    in
    let acks = Hashtbl.create (List.length tagged) in
    List.iter (fun (tag, ack) -> Hashtbl.replace acks tag ack) (t.inner.Device.drain ());
    let rec settle = function
      | [] ->
        if remaining t = 0 then reset_log t;
        Ok (List.length batch)
      | (tag, e) :: rest -> (
        match Hashtbl.find_opt acks tag with
        | Some (Ok _) ->
          t.destaged <- t.destaged + 1;
          settle rest
        | Some (Error err) ->
          t.retry <- e :: List.map snd rest @ t.retry;
          Error err
        | None ->
          t.retry <- e :: List.map snd rest @ t.retry;
          Error
            (Device.err ~op:`Write ~block:e.e_block
               ~e:{ Disk.Disk_sim.error_lba = 0; transient = true }
               ~retries:0))
    in
    settle tagged
  end

let drain t =
  let rec go budget =
    if remaining t = 0 then begin
      if t.destaged > 0 || t.tail > header_bytes then reset_log t;
      Ok ()
    end
    else if budget = 0 then
      (* a retry list that never shrinks means the device keeps failing *)
      Error
        (match t.retry with
        | e :: _ ->
          Device.err ~op:`Write ~block:e.e_block
            ~e:{ Disk.Disk_sim.error_lba = 0; transient = false }
            ~retries:3
        | [] -> assert false)
    else
      match destage_window t ~limit:t.cfg.destage_batch with
      | Ok _ -> go (budget - 1)
      | Error _ when remaining t > 0 && budget > 1 -> go (budget - 1)
      | Error e -> Error e
  in
  go (3 + ((remaining t + t.cfg.destage_batch - 1) / max 1 t.cfg.destage_batch))

(* The duty-cycle pump, mirroring the volume layer's rebuild_util: a
   window [now, deadline) grants [destage_util] of its span; destage
   while the last observed cost fits both the remaining budget and the
   deadline, halving a pessimistic estimate on skip so it can recover. *)
let pump t ~deadline =
  let u = t.cfg.destage_util in
  if u > 0. && remaining t > 0 then begin
    let clock = Nvm_sim.clock t.nvm in
    let start = Clock.now clock in
    let budget = ref ((deadline -. start) *. u) in
    let continue = ref true in
    while !continue && remaining t > 0 do
      let now = Clock.now clock in
      if t.cost_est <= !budget && now +. t.cost_est <= deadline then begin
        match destage_window t ~limit:1 with
        | Ok _ ->
          let cost = Clock.now clock -. now in
          t.cost_est <- Float.max cost 0.01;
          budget := !budget -. cost
        | Error _ -> continue := false
      end
      else begin
        t.cost_est <- Float.max (t.cost_est /. 2.) 0.01;
        continue := false
      end
    done
  end

(* ---- The write path ------------------------------------------------ *)

let stage t ~block ~payload_off ~payload_len =
  Queue.add { e_block = block; e_off = payload_off; e_len = payload_len } t.pending;
  Hashtbl.replace t.overlay block payload_off;
  t.next_seq <- Int64.succ t.next_seq

(* Append a batch of block writes as one committed unit: all records
   stored, then a single persist barrier — the commit point.  [`Bypass]
   means the batch cannot fit even an empty log (the caller writes it
   straight to the drained backing device). *)
let append_run t pairs =
  let need =
    List.fold_left
      (fun acc (_, p) -> acc + Record.encoded_size ~payload_len:(Bytes.length p))
      0 pairs
  in
  let fits () = t.tail + need <= log_limit t in
  let roomy =
    if fits () then Ok ()
    else match drain t with Ok () -> Ok () | Error e -> Error e
  in
  match roomy with
  | Error e -> Error e
  | Ok () ->
    if not (fits ()) then Ok `Bypass
    else begin
      let staged = ref [] in
      let seq = ref t.next_seq in
      List.iter
        (fun (block, payload) ->
          let plen = Bytes.length payload in
          let img = Record.encode { Record.seq = !seq; block; payload } in
          Nvm_sim.write t.nvm ~off:t.tail img;
          staged := (block, t.tail + rec_hdr, plen) :: !staged;
          t.tail <- t.tail + Bytes.length img;
          seq := Int64.succ !seq)
        pairs;
      (* commit point: a power cut in here tears writes that never
         returned — losing them is legal *)
      Nvm_sim.persist t.nvm;
      List.iter
        (fun (block, off, len) -> stage t ~block ~payload_off:off ~payload_len:len)
        (List.rev !staged);
      Trace.incr t.inner.Device.trace ~by:(List.length pairs) "nvm.staged";
      Ok `Staged
    end

(* ---- Device face --------------------------------------------------- *)

let nvm_span f =
  fun clock ->
   let t0 = Clock.now clock in
   let r = f () in
   (r, Breakdown.of_other (Clock.now clock -. t0))

let dev_write t block payload =
  let clock = Nvm_sim.clock t.nvm in
  let (r, bd) = nvm_span (fun () -> append_run t [ (block, payload) ]) clock in
  match r with
  | Error e -> Error e
  | Ok `Staged -> Ok (Io.make ~counters:[ ("nvm_staged", 1) ] bd)
  | Ok `Bypass -> t.inner.Device.write block payload

let dev_write_run t block payload =
  let bb = t.inner.Device.block_bytes in
  let n = (Bytes.length payload + bb - 1) / bb in
  if n <= t.cfg.max_stage_run then begin
    let pairs =
      List.init n (fun i ->
          let len = min bb (Bytes.length payload - (i * bb)) in
          let slice = Bytes.make bb '\000' in
          Bytes.blit payload (i * bb) slice 0 len;
          (block + i, slice))
    in
    let clock = Nvm_sim.clock t.nvm in
    let (r, bd) = nvm_span (fun () -> append_run t pairs) clock in
    match r with
    | Error e -> Error e
    | Ok `Staged -> Ok (Io.make ~counters:[ ("nvm_staged", n) ] bd)
    | Ok `Bypass -> t.inner.Device.write_run block payload
  end
  else
    (* a big sequential run goes to the disk directly; the log must be
       empty first or replay could clobber it with older records *)
    match drain t with
    | Error e -> Error e
    | Ok () -> t.inner.Device.write_run block payload

let dev_read t block =
  match Hashtbl.find_opt t.overlay block with
  | None -> t.inner.Device.read block
  | Some off ->
    let clock = Nvm_sim.clock t.nvm in
    let (bytes, bd) =
      nvm_span
        (fun () -> Nvm_sim.read t.nvm ~off ~len:t.inner.Device.block_bytes)
        clock
    in
    Ok (bytes, Io.make bd)

let dev_read_run t block count =
  let bb = t.inner.Device.block_bytes in
  let overlaps =
    let rec go i = i < count && (Hashtbl.mem t.overlay (block + i) || go (i + 1)) in
    go 0
  in
  if not overlaps then t.inner.Device.read_run block count
  else begin
    let buf = Bytes.create (count * bb) in
    let rec go i acc =
      if i >= count then Ok acc
      else
        match dev_read t (block + i) with
        | Error e -> Error e
        | Ok (bytes, c) ->
          Bytes.blit bytes 0 buf (i * bb) bb;
          go (i + 1) (Breakdown.add acc (Io.bd c))
    in
    match go 0 Breakdown.zero with
    | Error e -> Error e
    | Ok bd -> Ok (buf, Io.make bd)
  end

let dev_idle t dt =
  let clock = Nvm_sim.clock t.nvm in
  let deadline = Clock.now clock +. dt in
  pump t ~deadline;
  let rest = deadline -. Clock.now clock in
  if rest > 1e-9 then t.inner.Device.idle rest

let device t =
  let read = dev_read t in
  let read_run = dev_read_run t in
  let write = dev_write t in
  let write_run = dev_write_run t in
  let submit, poll, drain_q = Device.sync_queue ~read ~read_run ~write ~write_run in
  {
    Device.name = "nvmwal(" ^ t.inner.Device.name ^ ")";
    block_bytes = t.inner.Device.block_bytes;
    n_blocks = t.inner.Device.n_blocks;
    trace = t.inner.Device.trace;
    read;
    read_run;
    write;
    write_run;
    submit;
    poll;
    drain = drain_q;
    trim = (fun b -> t.inner.Device.trim b);
    idle = dev_idle t;
    utilization = (fun () -> t.inner.Device.utilization ());
  }

(* ---- Recovery ------------------------------------------------------ *)

let recover ?config ~nvm ~inner () =
  let img = Nvm_sim.snapshot nvm in
  let base, recs, report = scan img in
  let rec go = function
    | [] -> Ok ()
    | r :: rest -> (
      match inner.Device.write r.Record.block r.Record.payload with
      | Ok _ -> go rest
      | Error _ -> (
        (* one immediate retry, as the device retry loops do *)
        match inner.Device.write r.Record.block r.Record.payload with
        | Ok _ -> go rest
        | Error e -> Error e))
  in
  match go recs with
  | Error e -> Error e
  | Ok () ->
    let next =
      Int64.succ
        (List.fold_left
           (fun acc (r : Record.t) -> if Int64.compare r.seq acc > 0 then r.seq else acc)
           (Option.value base ~default:0L)
           recs)
    in
    let t = create ?config ~nvm ~inner () in
    t.base_seq <- next;
    t.next_seq <- next;
    Nvm_sim.write nvm ~off:0 (encode_header ~base_seq:next);
    Nvm_sim.persist nvm;
    Ok (t, report)

(* ---- Introspection ------------------------------------------------- *)

type status = {
  st_entries : int;
  st_destaged : int;
  st_log_used : int;
  st_log_capacity : int;
  st_base_seq : int64;
  st_next_seq : int64;
}

let status t =
  {
    st_entries = t.destaged + remaining t;
    st_destaged = t.destaged;
    st_log_used = t.tail;
    st_log_capacity = log_limit t;
    st_base_seq = t.base_seq;
    st_next_seq = t.next_seq;
  }
