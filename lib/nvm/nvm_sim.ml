open Vlog_util

type profile = {
  size_bytes : int;
  read_latency_ms : float;
  write_latency_ms : float;
  bandwidth_bytes_per_ms : float;
  persist_latency_ms : float;
  volatile_front_bytes : int;
}

let default_profile =
  {
    size_bytes = 8 * 1024 * 1024;
    read_latency_ms = 0.0003;
    write_latency_ms = 0.0007;
    bandwidth_bytes_per_ms = 2_000_000.;
    persist_latency_ms = 0.0005;
    volatile_front_bytes = 16 * 1024;
  }

type persist_fault = Torn_persist of int | Cut_before_persist
type injector = { on_persist : pending_bytes:int -> persist_fault option }

type stats = {
  nvm_reads : int;
  nvm_writes : int;
  bytes_read : int;
  bytes_written : int;
  persists : int;
  auto_drains : int;
}

type t = {
  profile : profile;
  clock : Clock.t;
  trace : Trace.sink;
  merged : Bytes.t;  (* what loads observe: front applied over media *)
  persisted : Bytes.t;  (* what survives a power cut *)
  front : (int * Bytes.t) Queue.t;  (* stores not yet persisted, oldest first *)
  mutable front_bytes : int;
  mutable injector : injector option;
  mutable nvm_reads : int;
  mutable nvm_writes : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
  mutable persists : int;
  mutable auto_drains : int;
}

let create ?(profile = default_profile) ?image ?(trace = Trace.null) ~clock () =
  let persisted =
    match image with
    | None -> Bytes.make profile.size_bytes '\000'
    | Some img ->
      if Bytes.length img <> profile.size_bytes then
        invalid_arg "Nvm_sim.create: image size does not match profile";
      Bytes.copy img
  in
  {
    profile;
    clock;
    trace;
    merged = Bytes.copy persisted;
    persisted;
    front = Queue.create ();
    front_bytes = 0;
    injector = None;
    nvm_reads = 0;
    nvm_writes = 0;
    bytes_read = 0;
    bytes_written = 0;
    persists = 0;
    auto_drains = 0;
  }

let profile t = t.profile
let clock t = t.clock
let size t = t.profile.size_bytes
let set_injector t i = t.injector <- i
let pending_bytes t = t.front_bytes

let stats t =
  {
    nvm_reads = t.nvm_reads;
    nvm_writes = t.nvm_writes;
    bytes_read = t.bytes_read;
    bytes_written = t.bytes_written;
    persists = t.persists;
    auto_drains = t.auto_drains;
  }

let transfer_ms t len = float_of_int len /. t.profile.bandwidth_bytes_per_ms

let check_range t ~off ~len op =
  if off < 0 || len < 0 || off + len > t.profile.size_bytes then
    invalid_arg (Printf.sprintf "Nvm_sim.%s: [%d, %d) out of range" op off (off + len))

let read t ~off ~len =
  check_range t ~off ~len "read";
  Clock.advance t.clock (t.profile.read_latency_ms +. transfer_ms t len);
  t.nvm_reads <- t.nvm_reads + 1;
  t.bytes_read <- t.bytes_read + len;
  Bytes.sub t.merged off len

(* Persist the oldest front entry unconditionally (ADR overflow drain:
   once a store is pushed out of the write-pending queue it has reached
   the persistence domain whether or not anyone fenced). *)
let drain_oldest t =
  match Queue.take_opt t.front with
  | None -> ()
  | Some (off, payload) ->
    Bytes.blit payload 0 t.persisted off (Bytes.length payload);
    t.front_bytes <- t.front_bytes - Bytes.length payload

let write t ~off payload =
  let len = Bytes.length payload in
  check_range t ~off ~len "write";
  Clock.advance t.clock (t.profile.write_latency_ms +. transfer_ms t len);
  Bytes.blit payload 0 t.merged off len;
  Queue.add (off, Bytes.copy payload) t.front;
  t.front_bytes <- t.front_bytes + len;
  t.nvm_writes <- t.nvm_writes + 1;
  t.bytes_written <- t.bytes_written + len;
  while t.front_bytes > t.profile.volatile_front_bytes do
    drain_oldest t;
    t.auto_drains <- t.auto_drains + 1
  done

(* Apply the oldest [budget] bytes of the front to the media: whole
   entries while they fit, then a byte prefix of the first entry that
   does not — a torn persist tears inside one store, exactly like a torn
   sector write tears inside one request. *)
let apply_prefix t budget =
  let left = ref budget in
  let stop = ref false in
  while (not !stop) && not (Queue.is_empty t.front) do
    let off, payload = Queue.peek t.front in
    let len = Bytes.length payload in
    if len <= !left then begin
      ignore (Queue.take t.front);
      Bytes.blit payload 0 t.persisted off len;
      t.front_bytes <- t.front_bytes - len;
      left := !left - len
    end
    else begin
      Bytes.blit payload 0 t.persisted off !left;
      stop := true
    end
  done

let persist t =
  (match t.injector with
  | Some i -> (
    match i.on_persist ~pending_bytes:t.front_bytes with
    | Some Cut_before_persist -> raise Disk.Disk_sim.Power_cut
    | Some (Torn_persist n) ->
      apply_prefix t (max 0 n);
      raise Disk.Disk_sim.Power_cut
    | None -> ())
  | None -> ());
  Clock.advance t.clock t.profile.persist_latency_ms;
  while not (Queue.is_empty t.front) do
    drain_oldest t
  done;
  t.persists <- t.persists + 1;
  Trace.incr t.trace "nvm.persists"

let snapshot t = Bytes.copy t.persisted
