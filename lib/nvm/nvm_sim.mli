(** Byte-addressable NVM device model.

    Models a small non-volatile memory (an NVDIMM region or a
    battery-backed controller buffer): loads and stores complete in the
    100ns–1µs range instead of the disk's milliseconds, bandwidth is
    memory-like, and persistence is split into two domains — a
    {e volatile front} (CPU caches / the memory controller's
    write-pending queue) whose contents a power cut can tear, and the
    persisted media behind it.  A store enters the volatile front at
    store speed; it is guaranteed to survive power loss only once a
    {!persist} barrier (CLWB+fence / ADR drain) has carried it across.

    Writes that overflow the volatile front drain oldest-first into the
    persisted image automatically (the ADR queue has finite depth), so
    the legally-losable window is bounded by
    [profile.volatile_front_bytes].

    All timing goes through the shared {!Vlog_util.Clock.t}, so NVM
    operations interleave on the same simulated timeline as the disks. *)

type profile = {
  size_bytes : int;  (** capacity of the region *)
  read_latency_ms : float;  (** fixed cost per load *)
  write_latency_ms : float;  (** fixed cost per store *)
  bandwidth_bytes_per_ms : float;  (** streaming transfer rate *)
  persist_latency_ms : float;  (** cost of a {!persist} barrier *)
  volatile_front_bytes : int;
      (** bytes of recently-stored data a power cut may tear *)
}

val default_profile : profile
(** 8 MiB region, 300 ns loads, 700 ns stores, 2 GB/s, 500 ns persist
    barrier, 16 KiB volatile front. *)

type t

val create :
  ?profile:profile ->
  ?image:Bytes.t ->
  ?trace:Trace.sink ->
  clock:Vlog_util.Clock.t ->
  unit ->
  t
(** A fresh NVM region, zeroed unless [image] supplies existing persisted
    contents (e.g. a {!snapshot} taken at a simulated power failure; it
    is copied, and must be exactly [profile.size_bytes] long). *)

val profile : t -> profile
val clock : t -> Vlog_util.Clock.t
val size : t -> int

val read : t -> off:int -> len:int -> Bytes.t
(** Load [len] bytes at [off] from the merged view (volatile front over
    persisted media).  Charges load latency + transfer time. *)

val write : t -> off:int -> Bytes.t -> unit
(** Store the buffer at [off].  The data lands in the volatile front and
    is {e not} yet guaranteed durable; the store is visible to
    subsequent {!read}s immediately.  Charges store latency + transfer
    time, and auto-drains the oldest front entries into the persisted
    image when the front overflows. *)

val persist : t -> unit
(** Persistence barrier: every store made so far is on the persisted
    media when this returns.  This is the commit point an injected fault
    can strike — see {!injector}.  Charges the barrier latency. *)

val pending_bytes : t -> int
(** Bytes currently in the volatile front (stored, not yet persisted). *)

val snapshot : t -> Bytes.t
(** Copy of the persisted image {e only} — what a remount after power
    loss finds.  Volatile-front contents are absent, exactly as a real
    cut would leave them. *)

(** {2 Fault injection}

    Mirrors {!Disk.Disk_sim.injector}: a deterministic plan interposes
    on every {!persist} barrier.  Both faults raise
    {!Disk.Disk_sim.Power_cut} — tearing the volatile front only makes
    sense when the power actually dies. *)

type persist_fault =
  | Torn_persist of int
      (** power dies mid-drain: only the oldest [n] bytes of the
          volatile front reach the media, then {!Disk.Disk_sim.Power_cut} *)
  | Cut_before_persist
      (** power dies on the barrier boundary: nothing pending is
          persisted *)

type injector = { on_persist : pending_bytes:int -> persist_fault option }

val set_injector : t -> injector option -> unit

type stats = {
  nvm_reads : int;
  nvm_writes : int;
  bytes_read : int;
  bytes_written : int;
  persists : int;
  auto_drains : int;  (** front-overflow drains (writes persisted early) *)
}

val stats : t -> stats
