type reason =
  | Exn of string
  | Timeout of float
  | Crashed of string

type error = { index : int; reason : reason }

let reason_to_string = function
  | Exn m -> "worker exception: " ^ m
  | Timeout s -> Printf.sprintf "worker timed out after %gs and was killed" s
  | Crashed m -> "worker crashed: " ^ m

let detected_cores () =
  try
    let ic = Unix.open_process_in "getconf _NPROCESSORS_ONLN 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    ignore (Unix.close_process_in ic);
    max 1 (int_of_string (String.trim line))
  with _ -> 1

let default_jobs () =
  match Sys.getenv_opt "VLSIM_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | _ -> detected_cores ())
  | None -> detected_cores ()

let nop (_ : int) = ()

(* ---- wire format: 8-byte big-endian length, then a marshalled
   [('b, string) result] (Ok payload | Error exn-string). ---- *)

let rec write_all fd buf off len =
  if len > 0 then begin
    let k = Unix.write fd buf off len in
    write_all fd buf (off + k) (len - k)
  end

(* Body of a worker process: compute, frame, ship, die without running
   the parent's [at_exit] handlers. *)
let child_main fd f x =
  let payload = match f x with v -> Ok v | exception e -> Error (Printexc.to_string e) in
  (try
     let body = Marshal.to_bytes payload [] in
     let frame = Bytes.create (8 + Bytes.length body) in
     Bytes.set_int64_be frame 0 (Int64.of_int (Bytes.length body));
     Bytes.blit body 0 frame 8 (Bytes.length body);
     write_all fd frame 0 (Bytes.length frame)
   with _ -> ());
  (try Unix.close fd with _ -> ());
  Unix._exit 0

let rec restart f x = try f x with Unix.Unix_error (Unix.EINTR, _, _) -> restart f x

(* One in-flight worker. *)
type slot = {
  pid : int;
  idx : int;
  fd : Unix.file_descr;
  buf : Buffer.t;
  deadline : float option;
}

let describe_status = function
  | Unix.WEXITED 0 -> "exited before returning a result"
  | Unix.WEXITED n -> Printf.sprintf "exited with status %d before returning a result" n
  | Unix.WSIGNALED n -> Printf.sprintf "killed by signal %d" n
  | Unix.WSTOPPED n -> Printf.sprintf "stopped by signal %d" n

(* Decode a worker's accumulated pipe output once it hit EOF. *)
let decode_frame ~idx ~status buf =
  let s = Buffer.contents buf in
  let short () = Error { index = idx; reason = Crashed (describe_status status) } in
  if String.length s < 8 then short ()
  else
    let len = Int64.to_int (String.get_int64_be s 0) in
    if len < 0 || String.length s < 8 + len then short ()
    else
      match (Marshal.from_string s 8 : (_, string) result) with
      | Ok v -> Ok v
      | Error m -> Error { index = idx; reason = Exn m }
      | exception _ -> short ()

let sequential ~on_start ~on_done f items =
  let out = ref [] in
  List.iteri
    (fun i x ->
      on_start i;
      let r =
        match f x with
        | v -> Ok v
        | exception e -> Error { index = i; reason = Exn (Printexc.to_string e) }
      in
      on_done i;
      out := r :: !out)
    items;
  List.rev !out

let parallel ?timeout_s ~on_start ~on_done ~jobs f items =
  let items = Array.of_list items in
  let n = Array.length items in
  let results : ('b, error) result option array = Array.make n None in
  let running = ref ([] : slot list) in
  let next = ref 0 in
  let finish slot r =
    results.(slot.idx) <- Some r;
    running := List.filter (fun s -> s.pid <> slot.pid) !running;
    on_done slot.idx
  in
  let reap_eof slot =
    (try Unix.close slot.fd with Unix.Unix_error _ -> ());
    let _, status = restart (Unix.waitpid []) slot.pid in
    finish slot (decode_frame ~idx:slot.idx ~status slot.buf)
  in
  let kill_expired slot timeout =
    (try Unix.kill slot.pid Sys.sigkill with Unix.Unix_error _ -> ());
    ignore (restart (Unix.waitpid []) slot.pid);
    (try Unix.close slot.fd with Unix.Unix_error _ -> ());
    finish slot (Error { index = slot.idx; reason = Timeout timeout })
  in
  let spawn () =
    while !next < n && List.length !running < jobs do
      let i = !next in
      incr next;
      (* The child inherits the stdio buffers: flush now so it cannot
         re-emit half-written parent output, and nothing is printed
         between here and the fork. *)
      flush stdout;
      flush stderr;
      let r, w = Unix.pipe () in
      match Unix.fork () with
      | 0 ->
        (try Unix.close r with Unix.Unix_error _ -> ());
        child_main w f items.(i)
      | pid ->
        (try Unix.close w with Unix.Unix_error _ -> ());
        let deadline =
          Option.map (fun t -> Unix.gettimeofday () +. t) timeout_s
        in
        running := { pid; idx = i; fd = r; buf = Buffer.create 256; deadline } :: !running;
        on_start i
    done
  in
  let chunk = Bytes.create 65536 in
  let pump () =
    let fds = List.map (fun s -> s.fd) !running in
    let select_timeout =
      List.fold_left
        (fun acc s ->
          match s.deadline with
          | None -> acc
          | Some d ->
            let left = Float.max 0. (d -. Unix.gettimeofday ()) in
            Some (match acc with None -> left | Some t -> Float.min t left))
        None !running
    in
    let ready, _, _ =
      restart (fun () ->
          Unix.select fds [] [] (match select_timeout with None -> -1. | Some t -> t)) ()
    in
    List.iter
      (fun fd ->
        match List.find_opt (fun s -> s.fd = fd) !running with
        | None -> ()
        | Some slot -> (
          match restart (fun () -> Unix.read fd chunk 0 (Bytes.length chunk)) () with
          | 0 -> reap_eof slot
          | k -> Buffer.add_subbytes slot.buf chunk 0 k
          | exception Unix.Unix_error _ -> reap_eof slot))
      ready;
    let now = Unix.gettimeofday () in
    List.iter
      (fun slot ->
        match (slot.deadline, timeout_s) with
        | Some d, Some t when now >= d -> kill_expired slot t
        | _ -> ())
      !running
  in
  let cleanup () =
    (* Only reached when the caller's callbacks raise: never leave
       orphans or zombies behind. *)
    List.iter
      (fun slot ->
        (try Unix.kill slot.pid Sys.sigkill with Unix.Unix_error _ -> ());
        (try ignore (restart (Unix.waitpid []) slot.pid) with Unix.Unix_error _ -> ());
        try Unix.close slot.fd with Unix.Unix_error _ -> ())
      !running;
    running := []
  in
  Fun.protect ~finally:cleanup (fun () ->
      spawn ();
      while !running <> [] do
        pump ();
        spawn ()
      done);
  Array.to_list
    (Array.map
       (function Some r -> r | None -> assert false (* every slot finished *))
       results)

let map ?timeout_s ?(on_start = nop) ?(on_done = nop) ~jobs f items =
  if items = [] then []
  else if jobs <= 1 then sequential ~on_start ~on_done f items
  else parallel ?timeout_s ~on_start ~on_done ~jobs f items
