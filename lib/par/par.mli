(** Deterministic process-parallel map for independent, seeded jobs.

    The evaluation benches and the crash/fault sweeps are matrices of
    independent cells: every cell derives its PRNG seed and builds its
    rig from its own coordinates, so cells share no state and can run
    anywhere.  {!map} fans such jobs out to worker processes
    ([Unix.fork] + a pipe per job carrying a length-prefixed [Marshal]
    frame) and merges the results {e in input order}, so the output of a
    parallel run is byte-identical to the sequential one.

    Workers are forked per job, at most [jobs] alive at once.  Forking
    per job is deliberate: a job that crashes or wedges takes down only
    its own process (the pool reports it as a structured {!error} and
    keeps going), killing on timeout is just [SIGKILL] on that pid, and
    every job starts from the parent's state with no carry-over from
    earlier cells — mutable globals in the simulator are isolated for
    free.

    [jobs = 1] runs every job in the calling process with no fork (and
    therefore no timeout enforcement), which keeps non-Unix platforms
    and debuggers working; exceptions are still caught and reported as
    [`Exn] errors so the two paths yield identical results. *)

type reason =
  | Exn of string  (** the job raised; payload is [Printexc.to_string] *)
  | Timeout of float
      (** the worker exceeded [timeout_s] and was killed with [SIGKILL] *)
  | Crashed of string
      (** the worker exited without delivering a result (fatal signal,
          [exit], corrupted frame); payload describes its wait status *)

type error = { index : int;  (** position of the failed item *) reason : reason }

val reason_to_string : reason -> string

val detected_cores : unit -> int
(** Number of online processors (via [getconf _NPROCESSORS_ONLN]);
    [1] when detection fails. *)

val default_jobs : unit -> int
(** [$VLSIM_JOBS] if set to a positive integer, else {!detected_cores}. *)

val map :
  ?timeout_s:float ->
  ?on_start:(int -> unit) ->
  ?on_done:(int -> unit) ->
  jobs:int ->
  ('a -> 'b) ->
  'a list ->
  ('b, error) result list
(** [map ~jobs f items] computes [f] over [items] on up to [jobs]
    concurrent worker processes and returns one result per item, in
    input order.  Items are never serialized (workers inherit them
    through [fork], so closures are fine); results cross the pipe via
    [Marshal] and must not contain closures or custom blocks without
    serializers.

    [on_start i] / [on_done i] fire in the {e parent} when item [i] is
    dispatched / when its result (or error) is recorded — in completion
    order, for progress reporting and wall-clock attribution.

    [timeout_s] bounds each job's run time; an expired worker is killed
    and reported as [Timeout].  Not enforced when [jobs <= 1].

    [f] must be deterministic for the parallel/sequential outputs to be
    identical; anything a job prints from a worker process is lost, so
    jobs should return rendered output instead of printing. *)
