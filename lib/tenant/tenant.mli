(** Sharded multi-tenant load on the volume layer.

    [n] client streams (tenants) each offer an open-loop Poisson stream
    of small writes to one shared namespace.  A namespace hash maps
    every request onto one of [s] independent volume shards — each shard
    its own clock, spindles and {!Volume.t} — so the shard simulations
    are embarrassingly parallel and fan out across cores via {!Par.map}.
    Every disk command a request scatters carries its tenant as the
    queue [owner] tag, so the drives' trace sinks accumulate per-tenant
    latency histograms ({!Trace.pp_summary} renders them as a fairness
    table), while the driver records exact per-request wall latencies at
    the host for the merged fairness report. *)

type config = {
  tenants : int;  (** client streams *)
  shards : int;  (** independent volume shards *)
  layout : Volume.layout;  (** per-shard layout *)
  leg_kind : Volume.leg_kind;
  queue_policy : Disk.Disk_queue.policy option;
      (** [None] = the leg kind's default *)
  blocks_per_shard : int;
  ops_per_tenant : int;
  rate_per_s : float;  (** offered load per tenant, requests/s *)
  seed : int64;
}

val default : config
(** 4 tenants, 4 mirrored VLD shards, 200 ops each at 150 req/s. *)

type op = {
  o_tenant : int;
  o_at : float;  (** arrival (ms) *)
  o_block : int;  (** shard-local logical block *)
}

val plan : config -> op list array
(** The deterministic schedule: per shard, that shard's requests sorted
    by arrival.  Tenant streams are Poisson; the shard of each request
    is the namespace hash of (tenant, request index). *)

type tenant_stats = {
  tenant : int;
  ops : int;
  mean_ms : float;
  p50_ms : float;
  p99_ms : float;
  max_ms : float;
  tput_iops : float;
      (** completed requests over the tenant's active span *)
}

type fairness = {
  p99_ratio : float;  (** max/min of the tenants' p99 latency *)
  tput_ratio : float;  (** max/min of the tenants' throughput *)
}

type result = {
  per_tenant : tenant_stats list;  (** by tenant id *)
  fairness : fairness;
  elapsed_ms : float;  (** slowest shard's simulated span *)
  total_ops : int;
  agg_iops : float;
}

val run_shard :
  ?trace:bool ->
  config ->
  shard:int ->
  op list ->
  (int * float * float) list * Trace.sink
(** Simulate one shard: build its volume, replay its schedule in arrival
    order (each request's disk commands tagged with its tenant), and
    return [(tenant, arrival, latency)] per request.  With
    [~trace:true] one live sink (stamped by the shard's clock) is shared
    by all the shard's spindles and returned — it holds the per-tenant
    queue histograms {!Trace.pp_summary} renders as a fairness table;
    otherwise the returned sink is {!Trace.null}. *)

val run : ?jobs:int -> config -> result
(** The full study: {!plan}, fan the shards across [jobs] workers
    (default {!Par.default_jobs}), merge and summarize.  Deterministic
    in [config] regardless of [jobs]. *)
