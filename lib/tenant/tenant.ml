open Vlog_util

type config = {
  tenants : int;
  shards : int;
  layout : Volume.layout;
  leg_kind : Volume.leg_kind;
  queue_policy : Disk.Disk_queue.policy option;
  blocks_per_shard : int;
  ops_per_tenant : int;
  rate_per_s : float;
  seed : int64;
}

let default =
  {
    tenants = 4;
    shards = 4;
    layout = Volume.Mirror 2;
    leg_kind = Volume.Vld_leg;
    queue_policy = None;
    blocks_per_shard = 128;
    ops_per_tenant = 200;
    rate_per_s = 150.;
    seed = 0x7e4a47L;
  }

type op = { o_tenant : int; o_at : float; o_block : int }

(* Namespace hash: splitmix64 finalizer over (tenant, request index).
   Stateless, so any node of a distributed front end routes a name to
   the same shard. *)
let shard_of ~shards ~tenant ~idx =
  let z =
    Int64.add
      (Int64.mul (Int64.of_int (tenant + 1)) 0x9E3779B97F4A7C15L)
      (Int64.of_int idx)
  in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int (Int64.logand z 0x3FFFFFFFL) mod shards

let plan cfg =
  if cfg.tenants < 1 || cfg.shards < 1 then
    invalid_arg "Tenant.plan: need at least one tenant and one shard";
  let buckets = Array.make cfg.shards [] in
  for t = 0 to cfg.tenants - 1 do
    let prng =
      Prng.create ~seed:(Int64.add cfg.seed (Int64.of_int ((t + 1) * 0x10001)))
    in
    let arrivals =
      Workload.Open_loop.arrivals ~prng ~process:Workload.Open_loop.Poisson
        ~rate_per_s:cfg.rate_per_s ~start:0. cfg.ops_per_tenant
    in
    List.iteri
      (fun i at ->
        let s = shard_of ~shards:cfg.shards ~tenant:t ~idx:i in
        buckets.(s) <- { o_tenant = t; o_at = at; o_block = 0 } :: buckets.(s))
      arrivals
  done;
  Array.map
    (fun ops ->
      (* shard-local blocks from a per-shard counter: collision-free by
         construction, wrapping over the shard's capacity *)
      let next = ref 0 in
      List.rev ops
      |> List.stable_sort (fun a b -> compare a.o_at b.o_at)
      |> List.map (fun o ->
             let b = !next mod cfg.blocks_per_shard in
             incr next;
             { o with o_block = b }))
    buckets

type tenant_stats = {
  tenant : int;
  ops : int;
  mean_ms : float;
  p50_ms : float;
  p99_ms : float;
  max_ms : float;
  tput_iops : float;
}

type fairness = { p99_ratio : float; tput_ratio : float }

type result = {
  per_tenant : tenant_stats list;
  fairness : fairness;
  elapsed_ms : float;
  total_ops : int;
  agg_iops : float;
}

let profile = Disk.Profile.with_cylinders Disk.Profile.st19101 4

let run_shard ?(trace = false) cfg ~shard ops =
  let clock = Clock.create () in
  let sink = if trace then Trace.create ~clock () else Trace.null in
  let mk_disk _ =
    Disk.Disk_sim.create ~buffer_policy:Disk.Track_buffer.Whole_track ~trace:sink
      ~profile ~clock ()
  in
  let disks = Array.init (Volume.n_legs cfg.layout) mk_disk in
  let vol =
    Volume.create ?queue_policy:cfg.queue_policy ~layout:cfg.layout
      ~leg_kind:cfg.leg_kind ~logical_blocks:cfg.blocks_per_shard ~disks
      ~prng:(Prng.create ~seed:(Int64.add cfg.seed (Int64.of_int (shard * 17))))
      ()
  in
  let bs = Volume.block_bytes vol in
  let samples =
    List.map
      (fun o ->
        let buf = Bytes.make bs (Char.chr (Char.code 'a' + (o.o_tenant mod 26))) in
        let owner = "t" ^ string_of_int o.o_tenant in
        match Volume.write_result_at vol ~owner ~at:o.o_at o.o_block buf with
        | Ok _ -> (o.o_tenant, o.o_at, Clock.now clock -. o.o_at)
        | Error e ->
          failwith
            (Format.asprintf "Tenant.run_shard: write failed: %a"
               Blockdev.Device.pp_io_error e))
      ops
  in
  (samples, sink)

let summarize cfg samples ~elapsed_ms =
  let per_tenant =
    List.init cfg.tenants (fun t ->
        let mine = List.filter (fun (t', _, _) -> t' = t) samples in
        let lats = List.map (fun (_, _, l) -> l) mine in
        let n = List.length lats in
        if n = 0 then
          {
            tenant = t;
            ops = 0;
            mean_ms = 0.;
            p50_ms = 0.;
            p99_ms = 0.;
            max_ms = 0.;
            tput_iops = 0.;
          }
        else
          let first =
            List.fold_left (fun a (_, at, _) -> Float.min a at) infinity mine
          in
          let last =
            List.fold_left
              (fun a (_, at, l) -> Float.max a (at +. l))
              neg_infinity mine
          in
          let span = if last > first then last -. first else elapsed_ms in
          {
            tenant = t;
            ops = n;
            mean_ms = Stats.mean lats;
            p50_ms = Stats.percentile 0.5 lats;
            p99_ms = Stats.percentile 0.99 lats;
            max_ms = List.fold_left Float.max 0. lats;
            tput_iops = (if span > 0. then float_of_int n /. span *. 1000. else 0.);
          })
  in
  let live = List.filter (fun s -> s.ops > 0) per_tenant in
  let ratio f =
    match live with
    | [] | [ _ ] -> 1.
    | _ ->
      let vs = List.map f live in
      let lo = List.fold_left Float.min infinity vs
      and hi = List.fold_left Float.max neg_infinity vs in
      if lo > 0. then hi /. lo else infinity
  in
  let total_ops = List.length samples in
  {
    per_tenant;
    fairness = { p99_ratio = ratio (fun s -> s.p99_ms); tput_ratio = ratio (fun s -> s.tput_iops) };
    elapsed_ms;
    total_ops;
    agg_iops =
      (if elapsed_ms > 0. then float_of_int total_ops /. elapsed_ms *. 1000. else 0.);
  }

let run ?jobs cfg =
  let jobs = match jobs with Some j -> j | None -> Par.default_jobs () in
  let schedule = plan cfg in
  let shard_ids = List.init cfg.shards Fun.id in
  let results =
    (* samples only: a trace sink would not survive the Marshal pipe *)
    Par.map ~jobs (fun s -> fst (run_shard cfg ~shard:s schedule.(s))) shard_ids
  in
  let samples =
    List.concat_map
      (function
        | Ok rs -> rs
        | Error e ->
          failwith
            (Printf.sprintf "Tenant.run: shard %d failed: %s" e.Par.index
               (Par.reason_to_string e.Par.reason)))
      results
  in
  (* Shards are independent timelines running concurrently: the study's
     simulated span is the slowest shard's span. *)
  let elapsed_ms =
    List.fold_left (fun a (_, at, l) -> Float.max a (at +. l)) 0. samples
  in
  summarize cfg samples ~elapsed_ms
