(** Systematic crash/fault sweep over the VLD.

    Generalizes the crash-point sweep: for every (fault kind × trigger
    boundary × tail mode) cell, run a seeded workload against a fresh
    VLD with a {!Plan} installed, freeze the platters at the crash (or
    at the end), bring up a new drive from the frozen image, recover,
    and check the durability invariants:

    - recovery never aborts — damaged map nodes are skipped and scanned
      around, not fatal;
    - no committed write is lost and no ghost appears, except that a
      fault which damages the {e only} copy of map state (bit rot of a
      map node) may regress the affected node's entries to an older
      committed version — never to fabricated contents, and never more
      entries than one node holds;
    - no read silently returns corrupt data: a block whose media was
      damaged reads back as an honest error, everything else reads back
      exactly as committed;
    - recovery is idempotent: crashing again immediately after recovery
      and recovering a second time reproduces the same logical state. *)

type config = {
  seed : int64;  (** master seed; every scenario derives from it *)
  ops : int;  (** logical operations per workload *)
  logical_blocks : int;
  hot_blocks : int;  (** workload writes land on this prefix, forcing overwrites *)
  cylinders : int;  (** disk size; sweeps shrink the drive to stay fast *)
  triggers : int;  (** boundaries swept per kind: faults at accesses [0..triggers-1] *)
  kinds : Plan.kind list;
  tail_modes : bool list;  (** whether to power down (write the tail) before freezing *)
}

val default : config
(** 5 kinds × 22 triggers × 2 tail modes = 220 scenarios, of which
    comfortably over 200 actually inject their fault (a trigger can
    fall past the end of a short recovery's read sequence). *)

type failure = {
  seed : int64;  (** the config's master seed *)
  kind : Plan.kind;
  trigger : int;
  with_tail : bool;
  case : int;
  message : string;
}
(** One invariant violation, carrying every coordinate needed to rerun
    its cell via {!run_scenario}. *)

val repro_of_failure : failure -> string
(** Copy-pasteable [--repro] argument, e.g.
    ["seed=7101,kind=torn,trigger=5,tail=true,case=37"]. *)

val parse_repro :
  string -> (int64 option * Plan.kind * int * bool * int, string) result
(** Inverse of {!repro_of_failure}: (seed override, kind, trigger,
    with_tail, case).  The seed field is optional — omitted means "use
    the config's". *)

val pp_failure : Format.formatter -> failure -> unit

type outcome = {
  scenarios : int;  (** cells executed *)
  injected : int;  (** cells whose fault actually fired *)
  cut : int;  (** workloads ended by simulated power loss *)
  degraded : int;  (** recoveries that had to skip damage (corrupt nodes or scan fallback) *)
  failures : failure list;  (** invariant violations, empty on success *)
}

val cells : config -> (Plan.kind * int * bool * int) list
(** The (kind, trigger, with_tail, case) matrix in canonical order.
    [case] is a function of the cell's coordinates alone, so every
    cell's seed is independent of execution order. *)

val run :
  ?jobs:int ->
  ?timeout_s:float ->
  ?scenario:
    (config -> kind:Plan.kind -> trigger:int -> with_tail:bool -> case:int -> outcome) ->
  config ->
  outcome
(** Run the whole matrix through {!Par.map} on [jobs] workers (default
    [1]: in-process, no fork) and merge the per-cell outcomes in matrix
    order — the result is identical for every [jobs] value.  A cell
    whose worker crashes, raises, or exceeds [timeout_s] (default 300 s,
    enforced only when [jobs > 1]) contributes a structured {!failure}
    with its repro coordinates instead of killing the sweep.
    [scenario] overrides the cell body — tests use it to plant
    deliberately crashing or hanging cells. *)

val run_scenario :
  config -> kind:Plan.kind -> trigger:int -> with_tail:bool -> case:int -> outcome
(** One cell of the sweep, exposed for the CLI and for debugging a
    single failing combination; [case] perturbs the workload seed. *)
