open Vlog_util

type config = {
  seed : int64;
  ops : int;
  logical_blocks : int;
  hot_blocks : int;
  cylinders : int;
  triggers : int;
  kinds : Plan.kind list;
  tail_modes : bool list;
}

let default =
  {
    seed = 7101L;
    ops = 20;
    logical_blocks = 300;
    hot_blocks = 48;
    cylinders = 3;
    triggers = 22;
    kinds =
      [ Plan.Power_cut; Plan.Torn_write; Plan.Grown_defect; Plan.Bit_rot;
        Plan.Transient_read 2 ];
    tail_modes = [ false; true ];
  }

type failure = {
  seed : int64;
  kind : Plan.kind;
  trigger : int;
  with_tail : bool;
  case : int;
  message : string;
}

(* A failure must be machine-reproducible: the repro string round-trips
   through {!parse_repro} into the exact [run_scenario] cell. *)
let repro_of_failure f =
  Printf.sprintf "seed=%Ld,kind=%s,trigger=%d,tail=%b,case=%d" f.seed
    (Plan.kind_to_string f.kind) f.trigger f.with_tail f.case

let pp_failure ppf f =
  Format.fprintf ppf "[%s trigger=%d tail=%b] %s (--repro %s)"
    (Plan.kind_to_string f.kind) f.trigger f.with_tail f.message
    (repro_of_failure f)

let parse_repro spec =
  let ( let* ) = Result.bind in
  let fields = String.split_on_char ',' spec in
  List.fold_left
    (fun acc field ->
      let* seed, kind, trigger, tail, case = acc in
      match String.index_opt field '=' with
      | None -> Error (Printf.sprintf "malformed repro field %S" field)
      | Some i -> (
        let k = String.sub field 0 i in
        let v = String.sub field (i + 1) (String.length field - i - 1) in
        match k with
        | "seed" -> (
          match Int64.of_string_opt v with
          | Some s -> Ok (Some s, kind, trigger, tail, case)
          | None -> Error (Printf.sprintf "bad seed %S" v))
        | "kind" ->
          let* kd = Plan.kind_of_string v in
          Ok (seed, Some kd, trigger, tail, case)
        | "trigger" -> (
          match int_of_string_opt v with
          | Some n -> Ok (seed, kind, Some n, tail, case)
          | None -> Error (Printf.sprintf "bad trigger %S" v))
        | "tail" -> (
          match bool_of_string_opt v with
          | Some b -> Ok (seed, kind, trigger, Some b, case)
          | None -> Error (Printf.sprintf "bad tail %S" v))
        | "case" -> (
          match int_of_string_opt v with
          | Some n -> Ok (seed, kind, trigger, tail, Some n)
          | None -> Error (Printf.sprintf "bad case %S" v))
        | _ -> Error (Printf.sprintf "unknown repro field %S" k)))
    (Ok (None, None, None, None, None))
    fields
  |> function
  | Error _ as e -> e
  | Ok (seed, Some kind, Some trigger, Some tail, Some case) ->
    Ok (seed, kind, trigger, tail, case)
  | Ok _ -> Error "repro spec needs at least kind=,trigger=,tail=,case="

type outcome = {
  scenarios : int;
  injected : int;
  cut : int;
  degraded : int;
  failures : failure list;
}

let zero = { scenarios = 0; injected = 0; cut = 0; degraded = 0; failures = [] }

let merge a b =
  {
    scenarios = a.scenarios + b.scenarios;
    injected = a.injected + b.injected;
    cut = a.cut + b.cut;
    degraded = a.degraded + b.degraded;
    failures = a.failures @ b.failures;
  }

let profile c = Disk.Profile.with_cylinders Disk.Profile.st19101 c.cylinders

(* Committed-content tag for (logical block, version): distinct within any
   realistic per-block history, so a recovered block identifies which
   committed version it carries — or that it carries none of them. *)
let tag ~logical ~version =
  Char.chr ((1 + (logical * 31) + (version * 7)) land 0xff)

let fresh_disk ?store c clock =
  Disk.Disk_sim.create ~buffer_policy:Disk.Track_buffer.Whole_track ?store
    ~profile:(profile c) ~clock ()

(* Fault kinds that strike while the workload runs; [Transient_read]
   instead strikes the recovery that follows the crash. *)
let workload_time = function
  | Plan.Torn_write | Plan.Bit_rot | Plan.Grown_defect | Plan.Power_cut -> true
  | Plan.Transient_read _ -> false
  | Plan.Drive_death | Plan.Drive_hang _ | Plan.Drive_flaky _
  | Plan.Latent_sectors _ ->
    (* drive kinds belong to volume legs, not this single-spindle sweep *)
    true
  | Plan.Nvm_cut | Plan.Nvm_torn | Plan.Nvm_destage_cut | Plan.Nvm_full ->
    (* NVM kinds belong to staged rigs; this sweep has no staging tier *)
    true

(* A map node holds at most this many entries, so damage to one node can
   regress at most this many logical blocks. *)
let max_blast_radius = 16

let run_scenario (c : config) ~kind ~trigger ~with_tail ~case =
  let scenario_seed = Int64.add c.seed (Int64.of_int (case * 7919)) in
  let clock = Clock.create () in
  let disk = fresh_disk c clock in
  let prng = Prng.create ~seed:scenario_seed in
  let vld =
    Blockdev.Vld.create ~disk ~logical_blocks:c.logical_blocks
      ~prng:(Prng.split prng) ()
  in
  let plan = Plan.create kind ~trigger ~seed:(Int64.add scenario_seed 1L) in
  if workload_time kind then Plan.install plan disk;
  let dev = Blockdev.Vld.device vld in
  let block_bytes = Vlog.Virtual_log.block_bytes (Blockdev.Vld.vlog vld) in
  (* Per-block committed history, newest first; [None] = absent.  Updated
     only after an operation returns, so a power cut mid-operation leaves
     the model at the last committed state — exactly what recovery owes. *)
  let hist = Array.make c.logical_blocks [ None ] in
  let wprng = Prng.split prng in
  let version = ref 0 in
  let cut = ref false in
  (try
     for _ = 1 to c.ops do
       let l = Prng.int wprng c.hot_blocks in
       if Prng.int wprng 6 = 0 then begin
         dev.Blockdev.Device.trim l;
         if List.hd hist.(l) <> None then hist.(l) <- None :: hist.(l)
       end
       else begin
         incr version;
         let tg = tag ~logical:l ~version:!version in
         match Blockdev.Vld.write_result vld l (Bytes.make block_bytes tg) with
         | Ok _ -> hist.(l) <- Some tg :: hist.(l)
         | Error _ -> ()
       end
     done;
     if with_tail then ignore (Blockdev.Vld.power_down vld)
   with Disk.Disk_sim.Power_cut -> cut := true);
  Plan.flush plan;
  let frozen = Disk.Sector_store.snapshot (Disk.Disk_sim.store disk) in
  let fail = ref [] in
  let failf fmt =
    Printf.ksprintf
      (fun message ->
        fail := { seed = c.seed; kind; trigger; with_tail; case; message } :: !fail)
      fmt
  in
  (* Strict cells must recover the model exactly; only damage to the sole
     copy of map state (bit rot) is allowed to regress entries. *)
  let strict = match kind with Plan.Bit_rot -> false | _ -> true in
  let recovery_plan = ref None in
  let recover_from store ~faulty =
    let clock2 = Clock.create () in
    let disk2 = fresh_disk ~store c clock2 in
    if faulty then begin
      let p = Plan.create kind ~trigger ~seed:(Int64.add scenario_seed 2L) in
      Plan.install p disk2;
      recovery_plan := Some p
    end;
    match
      Blockdev.Vld.recover ~disk:disk2 ~prng:(Prng.create ~seed:scenario_seed) ()
    with
    | Error e ->
      failf "recovery aborted: %s" e;
      None
    | Ok (vld2, report) -> Some (vld2, report, disk2)
  in
  let mapping vld2 =
    Array.init c.logical_blocks (fun l ->
        Vlog.Virtual_log.lookup (Blockdev.Vld.vlog vld2) l)
  in
  let degraded = ref false in
  (match recover_from frozen ~faulty:(not (workload_time kind)) with
  | None -> ()
  | Some (vld2, report, disk2) ->
    if report.Vlog.Virtual_log.corrupt_nodes > 0 then degraded := true;
    (match Vlog.Virtual_log.check_invariants (Blockdev.Vld.vlog vld2) with
    | Ok () -> ()
    | Error e -> failf "recovered map inconsistent: %s" e);
    let fm = Vlog.Virtual_log.freemap (Blockdev.Vld.vlog vld2) in
    let spb = Vlog.Freemap.sectors_per_block fm in
    let damaged = Plan.damaged_lbas plan in
    let overlaps_damage pba =
      let lba = Vlog.Freemap.lba_of_block fm pba in
      List.exists (fun d -> d >= lba && d < lba + spb) damaged
    in
    let divergent = ref 0 in
    for l = 0 to c.logical_blocks - 1 do
      let latest = List.hd hist.(l) in
      match Vlog.Virtual_log.lookup (Blockdev.Vld.vlog vld2) l with
      | None ->
        (* Absence is always in the history (blocks start absent), so a
           non-strict regression to absent is tolerated but counted. *)
        if latest <> None then
          if strict then failf "committed write to block %d lost" l
          else incr divergent
      | Some pba -> (
        match Blockdev.Vld.read_result vld2 l with
        | Error _ ->
          (* An honest error is owed only where the plan hurt the media. *)
          if strict || not (overlaps_damage pba) then
            failf "read error on undamaged block %d" l
          else incr divergent
        | Ok (data, _) ->
          let got = Some (Bytes.get data 0) in
          if got <> latest then begin
            incr divergent;
            if strict then
              failf "block %d holds stale data after recovery" l
            else if not (List.mem got hist.(l)) then
              failf "block %d holds fabricated data" l
          end)
    done;
    if (not strict) && !divergent > max_blast_radius then
      failf "damage to one node regressed %d blocks (max %d)" !divergent
        max_blast_radius;
    (* Idempotence: crash right after recovery, recover again, compare. *)
    let again = Disk.Sector_store.snapshot (Disk.Disk_sim.store disk2) in
    (match recover_from again ~faulty:false with
    | None -> ()
    | Some (vld3, _, _) ->
      if mapping vld2 <> mapping vld3 then failf "recovery is not idempotent"));
  let injected =
    Plan.fired plan
    || match !recovery_plan with Some p -> Plan.fired p | None -> false
  in
  {
    scenarios = 1;
    injected = (if injected then 1 else 0);
    cut = (if !cut then 1 else 0);
    degraded = (if !degraded then 1 else 0);
    failures = List.rev !fail;
  }

(* The matrix in canonical order.  [case] is a function of the cell's
   position alone (tail-major, then kind, then trigger), so a cell's
   seed derives from its coordinates and never from which cells ran
   before it — the property that makes the sweep safe to fan out. *)
let cells (c : config) =
  let cells = ref [] in
  let case = ref 0 in
  List.iter
    (fun with_tail ->
      List.iter
        (fun kind ->
          for trigger = 0 to c.triggers - 1 do
            incr case;
            cells := (kind, trigger, with_tail, !case) :: !cells
          done)
        c.kinds)
    c.tail_modes;
  List.rev !cells

(* A worker that died (crash, wedge, exception) degrades to a per-cell
   failure carrying the same repro coordinates a judged failure would. *)
let worker_failure (c : config) (kind, trigger, with_tail, case) reason =
  {
    zero with
    scenarios = 1;
    failures =
      [
        { seed = c.seed; kind; trigger; with_tail; case;
          message = Par.reason_to_string reason };
      ];
  }

let run ?(jobs = 1) ?(timeout_s = 300.) ?scenario (c : config) =
  let scenario =
    match scenario with None -> run_scenario | Some f -> f
  in
  let cells = cells c in
  let results =
    Par.map ~timeout_s ~jobs
      (fun (kind, trigger, with_tail, case) ->
        scenario c ~kind ~trigger ~with_tail ~case)
      cells
  in
  List.fold_left2
    (fun acc cell -> function
      | Ok o -> merge acc o
      | Error (e : Par.error) -> merge acc (worker_failure c cell e.Par.reason))
    zero cells results
