(** Deterministic fault plans.

    A plan turns one seeded decision — "the [trigger]-th media access of
    this kind goes wrong" — into a {!Disk.Disk_sim.injector} installed on
    a simulated drive.  Everything downstream (which sector tears, which
    bit rots) flows from the plan's own {!Vlog_util.Prng.t}, so a
    scenario is reproducible from [(kind, trigger, seed)] alone.  Plans
    are how the sweep harness ({!Sweep}) and the [vlsim faults] command
    damage a drive on purpose. *)

type kind =
  | Torn_write
      (** power dies partway through the [trigger]-th write: a prefix of
          its sectors (chosen at a sector boundary) reaches the platter,
          the rest keep their stale contents, and {!Disk.Disk_sim.Power_cut}
          is raised *)
  | Bit_rot
      (** one sector of the [trigger]-th write silently decays after the
          write completes: a bit flips without an ECC refresh, so the
          damage surfaces only on the next read of that sector *)
  | Transient_read of int
      (** the [trigger]-th read fails, as do the next [n - 1] attempts;
          retry [n] succeeds.  Models recoverable positioning/ECC errors
          that bounded retry must absorb *)
  | Grown_defect
      (** the [trigger]-th write hits a permanently bad sector: the write
          fails there (a prefix may persist) and every later access to
          that sector fails too, until the block is retired and the data
          rehomed *)
  | Power_cut
      (** power dies on the boundary just before the [trigger]-th write —
          the clean-cut case: no media damage, only lost volatile state *)
  | Drive_death
      (** the whole drive dies on its [trigger]-th access (reads and
          writes counted together): that access and every later one fails
          permanently.  Only a redundant volume survives this *)
  | Drive_hang of float
      (** the drive stops responding for this many simulated milliseconds
          starting at its [trigger]-th access: every command in the window
          fails transiently, then service resumes.  Models firmware
          recovery stalls / controller resets *)
  | Drive_flaky of int
      (** from the [trigger]-th access on, the drive alternates bursts of
          [n] failed commands with [n] served ones — an intermittent cable
          or dying controller *)
  | Latent_sectors of int
      (** the [trigger]-th read discovers a latent range of [n] bad
          sectors anchored at that read's position: reads of the range
          fail permanently until the sectors are rewritten (the drive
          remaps on write).  Models defects grown while the region sat
          idle, found only on the next access *)
  | Nvm_cut
      (** power dies on the boundary just before the [trigger]-th NVM
          persist barrier: the volatile front is lost whole — a cut
          mid-append, before the write's commit point *)
  | Nvm_torn
      (** the [trigger]-th NVM persist barrier tears: a seeded strict
          byte prefix of the volatile front reaches the persisted
          domain, the tail record's seal is lost, and
          {!Disk.Disk_sim.Power_cut} is raised *)
  | Nvm_destage_cut
      (** power dies just before the [trigger]-th write on the backing
          disk — in a staged rig, a crash mid-destage: the NVM log
          survives and must replay *)
  | Nvm_full
      (** the backpressure cell: meant for a rig whose WAL log is
          capped tiny, so appends destage inline; power dies just
          before the [trigger]-th backing-disk write, mid-backpressure *)

val kind_to_string : kind -> string

val kind_of_string : string -> (kind, string) result
(** Inverse of {!kind_to_string}: accepts
    [torn | rot | transient[:n] | defect | powercut
     | death | hang[:ms] | flaky[:n] | latent[:n]
     | nvmcut | nvmtorn | destagecut | nvmfull]. *)

val is_drive_kind : kind -> bool
(** Whether the kind models a whole-drive failure (death, hang, flaky,
    latent range) rather than a single-sector event.  Drive kinds are
    meant for volume legs: a lone drive has nowhere to fail over to. *)

val is_nvm_kind : kind -> bool
(** Whether the kind targets the NVM staging tier's persistence
    boundary.  NVM kinds only make sense on a rig with an {!Nvm_wal}
    in front of the disk; the plain sweeps reject them. *)

type t

val create : kind -> trigger:int -> seed:int64 -> t

val install : t -> Disk.Disk_sim.t -> unit
(** Interpose the plan on every media access of [disk] and register a
    whole-drive {!Disk.Disk_sim.set_health_probe} reporting {!health}.
    Install after formatting: the trigger counts only accesses made once
    the plan is in place. *)

val install_nvm : t -> Nvm.Nvm_sim.t -> unit
(** Interpose the plan on every persist barrier of [nvm].  Only the NVM
    kinds ({!is_nvm_kind}) ever fire there; installing any other kind
    is a no-op on the NVM side.  A staged rig installs the same plan on
    both the NVM ([install_nvm]) and the backing disk ({!install}), and
    whichever counter the kind watches decides where it strikes. *)

val flush : t -> unit
(** Apply any scheduled-but-unapplied damage (pending bit rot) to the
    platters now.  Rot is normally applied lazily at the next media
    access; call this before freezing a snapshot so the decay is in it. *)

val fired : t -> bool
(** Whether the planned fault has been injected yet. *)

val stall_until : t -> float option
(** The absolute deadline (simulated ms) until which a fired
    [Drive_hang] is still refusing commands; [None] when the drive is
    not currently hanging.  This is the stall probe a
    {!Disk.Disk_queue} wants: a queued command that fails transiently
    while the drive hangs is re-queued behind this deadline — stalling
    just its own tag — instead of completing as failed. *)

val health : t -> Disk.Disk_sim.drive_health
(** Whole-drive condition implied by the plan's current state:
    [Dead_drive] once a [Drive_death] fires, [Hung until] while a fired
    [Drive_hang] is inside its window, [Flaky_drive] once a
    [Drive_flaky] fires, [Ok_drive] otherwise (sector-level kinds never
    report a drive condition).  {!install} registers this as the disk's
    health probe so the command queue and the volume manager can
    distinguish "stall the tag", "retry with backoff", and "abort —
    the drive is gone" without knowing about fault plans. *)

val kind : t -> kind
val trigger : t -> int

type leg_spec = { ls_kind : kind; ls_leg : int option }
(** A whole-drive fault aimed at a specific array leg: [ls_leg] is the
    flat leg index ([None] = the caller's default victim). *)

val leg_spec_to_string : leg_spec -> string
(** [death@2], or bare [hang:80] when no leg is pinned. *)

val leg_spec_of_string : string -> (leg_spec, string) result
(** Inverse of {!leg_spec_to_string}; accepts [KIND] or [KIND@LEG] where
    KIND must satisfy {!is_drive_kind}.  This is the parser behind
    [vlsim volume fail --fault]. *)

val damaged_lbas : t -> int list
(** Absolute sectors whose contents this plan damaged or withheld: the
    unpersisted suffix of a torn write, a rotted sector, a grown-defect
    sector.  Sweep invariants use this as the {e allowance}: a logical
    block may legitimately read as an error (or regress) only if its
    physical home overlaps this list — any other divergence is a bug.
    Entries are not retracted if later writes repair the sector. *)
