open Vlog_util

type kind =
  | Torn_write
  | Bit_rot
  | Transient_read of int
  | Grown_defect
  | Power_cut
  | Drive_death
  | Drive_hang of float
  | Drive_flaky of int
  | Latent_sectors of int
  | Nvm_cut
  | Nvm_torn
  | Nvm_destage_cut
  | Nvm_full

let kind_to_string = function
  | Torn_write -> "torn"
  | Bit_rot -> "rot"
  | Transient_read n -> Printf.sprintf "transient:%d" n
  | Grown_defect -> "defect"
  | Power_cut -> "powercut"
  | Drive_death -> "death"
  | Drive_hang ms -> Printf.sprintf "hang:%g" ms
  | Drive_flaky n -> Printf.sprintf "flaky:%d" n
  | Latent_sectors n -> Printf.sprintf "latent:%d" n
  | Nvm_cut -> "nvmcut"
  | Nvm_torn -> "nvmtorn"
  | Nvm_destage_cut -> "destagecut"
  | Nvm_full -> "nvmfull"

let kind_of_string s =
  match String.split_on_char ':' s with
  | [ "torn" ] -> Ok Torn_write
  | [ "rot" ] -> Ok Bit_rot
  | [ "transient" ] -> Ok (Transient_read 2)
  | [ "transient"; n ] -> (
    match int_of_string_opt n with
    | Some n when n > 0 -> Ok (Transient_read n)
    | _ -> Error (Printf.sprintf "bad transient retry count in %S" s))
  | [ "defect" ] -> Ok Grown_defect
  | [ "powercut" ] -> Ok Power_cut
  | [ "death" ] -> Ok Drive_death
  | [ "hang" ] -> Ok (Drive_hang 50.)
  | [ "hang"; ms ] -> (
    match float_of_string_opt ms with
    | Some ms when ms > 0. -> Ok (Drive_hang ms)
    | _ -> Error (Printf.sprintf "bad hang duration in %S" s))
  | [ "flaky" ] -> Ok (Drive_flaky 3)
  | [ "flaky"; n ] -> (
    match int_of_string_opt n with
    | Some n when n > 0 -> Ok (Drive_flaky n)
    | _ -> Error (Printf.sprintf "bad flaky burst length in %S" s))
  | [ "latent" ] -> Ok (Latent_sectors 16)
  | [ "latent"; n ] -> (
    match int_of_string_opt n with
    | Some n when n > 0 -> Ok (Latent_sectors n)
    | _ -> Error (Printf.sprintf "bad latent range length in %S" s))
  | [ "nvmcut" ] -> Ok Nvm_cut
  | [ "nvmtorn" ] -> Ok Nvm_torn
  | [ "destagecut" ] -> Ok Nvm_destage_cut
  | [ "nvmfull" ] -> Ok Nvm_full
  | _ ->
    Error
      (Printf.sprintf
         "unknown fault kind %S \
          (torn|rot|transient[:n]|defect|powercut|death|hang[:ms]|flaky[:n]|latent[:n]\
          |nvmcut|nvmtorn|destagecut|nvmfull)"
         s)

let is_drive_kind = function
  | Drive_death | Drive_hang _ | Drive_flaky _ | Latent_sectors _ -> true
  | Torn_write | Bit_rot | Transient_read _ | Grown_defect | Power_cut
  | Nvm_cut | Nvm_torn | Nvm_destage_cut | Nvm_full ->
    false

let is_nvm_kind = function
  | Nvm_cut | Nvm_torn | Nvm_destage_cut | Nvm_full -> true
  | Torn_write | Bit_rot | Transient_read _ | Grown_defect | Power_cut
  | Drive_death | Drive_hang _ | Drive_flaky _ | Latent_sectors _ ->
    false

type t = {
  kind : kind;
  trigger : int;
  prng : Prng.t;
  mutable disk : Disk.Disk_sim.t option;
  mutable writes_seen : int;
  mutable reads_seen : int;
  mutable fired : bool;
  mutable pending_rot : int option; (* absolute lba awaiting silent decay *)
  mutable armed : bool; (* Transient_read: trigger reached *)
  mutable transient_left : int; (* failures still owed once armed *)
  defects : (int, unit) Hashtbl.t; (* grown-defect sectors, absolute lbas *)
  mutable damaged : int list;
  mutable accesses_seen : int; (* drive kinds count reads + writes combined *)
  mutable hang_until : float option; (* Drive_hang: absolute deadline, ms *)
  mutable flaky_seen : int; (* accesses since a flaky drive fired *)
  latent : (int, unit) Hashtbl.t; (* latent sectors awaiting discovery *)
  mutable persists_seen : int; (* NVM persist barriers observed *)
}

let create kind ~trigger ~seed =
  {
    kind;
    trigger;
    prng = Prng.create ~seed;
    disk = None;
    writes_seen = 0;
    reads_seen = 0;
    fired = false;
    pending_rot = None;
    armed = false;
    transient_left = 0;
    defects = Hashtbl.create 4;
    damaged = [];
    accesses_seen = 0;
    hang_until = None;
    flaky_seen = 0;
    latent = Hashtbl.create 4;
    persists_seen = 0;
  }

let fired t = t.fired
let kind t = t.kind
let trigger t = t.trigger
let damaged_lbas t = t.damaged

(* Bit rot is scheduled when the victim write completes and applied just
   before the next media access (or an explicit [flush]): the decay must
   happen after the head has laid the sector down, and the injector only
   sees the moments before each access. *)
let flush t =
  match (t.pending_rot, t.disk) with
  | Some lba, Some disk ->
    t.pending_rot <- None;
    Disk.Sector_store.rot (Disk.Disk_sim.store disk) ~lba ~sectors:1 t.prng;
    t.damaged <- lba :: t.damaged
  | _ -> ()

let defect_in t ~lba ~sectors =
  let rec go i =
    if i >= sectors then None
    else if Hashtbl.mem t.defects (lba + i) then Some (lba + i)
    else go (i + 1)
  in
  if Hashtbl.length t.defects = 0 then None else go 0

let latent_in t ~lba ~sectors =
  let rec go i =
    if i >= sectors then None
    else if Hashtbl.mem t.latent (lba + i) then Some (lba + i)
    else go (i + 1)
  in
  if Hashtbl.length t.latent = 0 then None else go 0

let now t =
  match t.disk with
  | Some d -> Clock.now (Disk.Disk_sim.clock d)
  | None -> 0.

let stall_until t =
  match t.hang_until with
  | Some until when now t < until -> Some until
  | _ -> None

let health t : Disk.Disk_sim.drive_health =
  if not t.fired then Ok_drive
  else
    match t.kind with
    | Drive_death -> Dead_drive
    | Drive_hang _ -> (
      match stall_until t with Some until -> Hung until | None -> Ok_drive)
    | Drive_flaky _ -> Flaky_drive
    | _ -> Ok_drive

(* Whole-drive faults strike commands regardless of direction, so their
   trigger counts every access.  Returns how the current command fares
   before any sector-level plan logic runs. *)
let drive_gate t =
  match t.kind with
  | Drive_death | Drive_hang _ | Drive_flaky _ ->
    let n = t.accesses_seen in
    t.accesses_seen <- n + 1;
    if (not t.fired) && n = t.trigger then begin
      t.fired <- true;
      match t.kind with
      | Drive_hang ms -> t.hang_until <- Some (now t +. ms)
      | _ -> ()
    end;
    if not t.fired then `Pass
    else (
      match t.kind with
      | Drive_death -> `Permanent
      | Drive_hang _ -> (
        match t.hang_until with
        | Some until when now t < until -> `Transient
        | Some _ ->
          t.hang_until <- None;
          `Pass
        | None -> `Pass)
      | Drive_flaky burst ->
        let k = t.flaky_seen in
        t.flaky_seen <- k + 1;
        if k / burst mod 2 = 0 then `Transient else `Pass
      | _ -> `Pass)
  | _ -> `Pass

let on_write t ~lba ~sectors =
  flush t;
  match drive_gate t with
  | `Permanent -> Some (Disk.Disk_sim.Unwritable lba)
  | `Transient -> Some Disk.Disk_sim.Transient_write
  | `Pass -> (
    (* A latent sector heals when freshly written: the drive remaps it
       internally and the new data sticks. *)
    if Hashtbl.length t.latent > 0 then
      for i = 0 to sectors - 1 do
        Hashtbl.remove t.latent (lba + i)
      done;
    match defect_in t ~lba ~sectors with
    | Some bad -> Some (Disk.Disk_sim.Unwritable bad)
    | None ->
      let n = t.writes_seen in
      t.writes_seen <- n + 1;
      if t.fired || n <> t.trigger then None
      else begin
        match t.kind with
        | Drive_death | Drive_hang _ | Drive_flaky _ | Latent_sectors _
        | Nvm_cut | Nvm_torn ->
          (* drive kinds fire from their own counters, NVM-barrier kinds
             from the persist counter — never here *)
          None
        | _ ->
          t.fired <- true;
          (match t.kind with
          | Power_cut -> raise Disk.Disk_sim.Power_cut
          | Nvm_destage_cut | Nvm_full ->
            (* in a staged rig the backing disk sees only destage writes
               (and drained bypasses), so the trigger-th one is a crash
               mid-destage *)
            raise Disk.Disk_sim.Power_cut
          | Torn_write ->
            let k = Prng.int t.prng sectors in
            t.damaged <- List.init (sectors - k) (fun i -> lba + k + i) @ t.damaged;
            Some (Disk.Disk_sim.Torn_write k)
          | Grown_defect ->
            let bad = lba + Prng.int t.prng sectors in
            Hashtbl.replace t.defects bad ();
            t.damaged <- bad :: t.damaged;
            Some (Disk.Disk_sim.Unwritable bad)
          | Bit_rot ->
            t.pending_rot <- Some (lba + Prng.int t.prng sectors);
            None
          | Transient_read _ | Drive_death | Drive_hang _ | Drive_flaky _
          | Latent_sectors _ | Nvm_cut | Nvm_torn ->
            None)
      end)

let on_read t ~lba ~sectors =
  flush t;
  match drive_gate t with
  | `Permanent -> Some (Disk.Disk_sim.Unreadable lba)
  | `Transient -> Some Disk.Disk_sim.Transient_read
  | `Pass -> (
    match defect_in t ~lba ~sectors with
    | Some bad -> Some (Disk.Disk_sim.Unreadable bad)
    | None -> (
      match latent_in t ~lba ~sectors with
      | Some bad -> Some (Disk.Disk_sim.Unreadable bad)
      | None -> (
        let n = t.reads_seen in
        t.reads_seen <- n + 1;
        match t.kind with
        | Transient_read fails ->
          if (not t.armed) && (not t.fired) && n = t.trigger then begin
            t.armed <- true;
            t.fired <- true;
            t.transient_left <- fails
          end;
          if t.armed && t.transient_left > 0 then begin
            t.transient_left <- t.transient_left - 1;
            Some Disk.Disk_sim.Transient_read
          end
          else None
        | Latent_sectors len ->
          (* The trigger-th read discovers a latent range anchored where
             the head happens to be: that read and every later read of the
             range fail until the sectors are rewritten. *)
          if (not t.fired) && n = t.trigger then begin
            t.fired <- true;
            for i = 0 to len - 1 do
              Hashtbl.replace t.latent (lba + i) ()
            done;
            t.damaged <- List.init len (fun i -> lba + i) @ t.damaged;
            Some (Disk.Disk_sim.Unreadable lba)
          end
          else None
        | _ -> None)))

(* NVM-barrier kinds fire on the persist counter: the trigger-th commit
   barrier is the one the power cut strikes.  The torn variant persists
   a seeded strict prefix of the volatile front, so at least the last
   byte — and with it the tail record's CRC — is lost. *)
let on_persist t ~pending_bytes =
  match t.kind with
  | Nvm_cut | Nvm_torn ->
    let n = t.persists_seen in
    t.persists_seen <- n + 1;
    if t.fired || n <> t.trigger then None
    else begin
      t.fired <- true;
      match t.kind with
      | Nvm_cut -> Some Nvm.Nvm_sim.Cut_before_persist
      | _ -> Some (Nvm.Nvm_sim.Torn_persist (Prng.int t.prng (max 1 pending_bytes)))
    end
  | _ -> None

let install_nvm t nvm =
  Nvm.Nvm_sim.set_injector nvm
    (Some
       { Nvm.Nvm_sim.on_persist = (fun ~pending_bytes -> on_persist t ~pending_bytes) })

let install t disk =
  t.disk <- Some disk;
  Disk.Disk_sim.set_injector disk
    (Some
       {
         Disk.Disk_sim.on_read = (fun ~lba ~sectors -> on_read t ~lba ~sectors);
         on_write = (fun ~lba ~sectors -> on_write t ~lba ~sectors);
       });
  Disk.Disk_sim.set_health_probe disk (Some (fun () -> health t))

(* A whole-drive fault aimed at one leg of an array: "death@2" installs
   a death plan on leg 2, a bare "hang:80" on the victim the caller
   picks.  Only drive kinds make sense per-leg. *)
type leg_spec = { ls_kind : kind; ls_leg : int option }

let leg_spec_to_string { ls_kind; ls_leg } =
  match ls_leg with
  | None -> kind_to_string ls_kind
  | Some l -> Printf.sprintf "%s@%d" (kind_to_string ls_kind) l

let leg_spec_of_string s =
  let kind_part, leg_part =
    match String.index_opt s '@' with
    | None -> (s, None)
    | Some i ->
      (String.sub s 0 i, Some (String.sub s (i + 1) (String.length s - i - 1)))
  in
  match kind_of_string kind_part with
  | Error _ as e -> e
  | Ok k when not (is_drive_kind k) ->
    Error
      (Printf.sprintf "fault %S is not a whole-drive kind (death|hang[:ms]|flaky[:n]|latent[:n])" s)
  | Ok k -> (
    match leg_part with
    | None -> Ok { ls_kind = k; ls_leg = None }
    | Some l -> (
      match int_of_string_opt l with
      | Some n when n >= 0 -> Ok { ls_kind = k; ls_leg = Some n }
      | _ -> Error (Printf.sprintf "bad leg index in %S" s)))
