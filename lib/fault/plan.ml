open Vlog_util

type kind =
  | Torn_write
  | Bit_rot
  | Transient_read of int
  | Grown_defect
  | Power_cut

let kind_to_string = function
  | Torn_write -> "torn"
  | Bit_rot -> "rot"
  | Transient_read n -> Printf.sprintf "transient:%d" n
  | Grown_defect -> "defect"
  | Power_cut -> "powercut"

let kind_of_string s =
  match String.split_on_char ':' s with
  | [ "torn" ] -> Ok Torn_write
  | [ "rot" ] -> Ok Bit_rot
  | [ "transient" ] -> Ok (Transient_read 2)
  | [ "transient"; n ] -> (
    match int_of_string_opt n with
    | Some n when n > 0 -> Ok (Transient_read n)
    | _ -> Error (Printf.sprintf "bad transient retry count in %S" s))
  | [ "defect" ] -> Ok Grown_defect
  | [ "powercut" ] -> Ok Power_cut
  | _ ->
    Error
      (Printf.sprintf "unknown fault kind %S (torn|rot|transient[:n]|defect|powercut)"
         s)

type t = {
  kind : kind;
  trigger : int;
  prng : Prng.t;
  mutable disk : Disk.Disk_sim.t option;
  mutable writes_seen : int;
  mutable reads_seen : int;
  mutable fired : bool;
  mutable pending_rot : int option; (* absolute lba awaiting silent decay *)
  mutable armed : bool; (* Transient_read: trigger reached *)
  mutable transient_left : int; (* failures still owed once armed *)
  defects : (int, unit) Hashtbl.t; (* grown-defect sectors, absolute lbas *)
  mutable damaged : int list;
}

let create kind ~trigger ~seed =
  {
    kind;
    trigger;
    prng = Prng.create ~seed;
    disk = None;
    writes_seen = 0;
    reads_seen = 0;
    fired = false;
    pending_rot = None;
    armed = false;
    transient_left = 0;
    defects = Hashtbl.create 4;
    damaged = [];
  }

let fired t = t.fired
let kind t = t.kind
let trigger t = t.trigger
let damaged_lbas t = t.damaged

(* Bit rot is scheduled when the victim write completes and applied just
   before the next media access (or an explicit [flush]): the decay must
   happen after the head has laid the sector down, and the injector only
   sees the moments before each access. *)
let flush t =
  match (t.pending_rot, t.disk) with
  | Some lba, Some disk ->
    t.pending_rot <- None;
    Disk.Sector_store.rot (Disk.Disk_sim.store disk) ~lba ~sectors:1 t.prng;
    t.damaged <- lba :: t.damaged
  | _ -> ()

let defect_in t ~lba ~sectors =
  let rec go i =
    if i >= sectors then None
    else if Hashtbl.mem t.defects (lba + i) then Some (lba + i)
    else go (i + 1)
  in
  if Hashtbl.length t.defects = 0 then None else go 0

let on_write t ~lba ~sectors =
  flush t;
  match defect_in t ~lba ~sectors with
  | Some bad -> Some (Disk.Disk_sim.Unwritable bad)
  | None ->
    let n = t.writes_seen in
    t.writes_seen <- n + 1;
    if t.fired || n <> t.trigger then None
    else begin
      t.fired <- true;
      match t.kind with
      | Power_cut -> raise Disk.Disk_sim.Power_cut
      | Torn_write ->
        let k = Prng.int t.prng sectors in
        t.damaged <- List.init (sectors - k) (fun i -> lba + k + i) @ t.damaged;
        Some (Disk.Disk_sim.Torn_write k)
      | Grown_defect ->
        let bad = lba + Prng.int t.prng sectors in
        Hashtbl.replace t.defects bad ();
        t.damaged <- bad :: t.damaged;
        Some (Disk.Disk_sim.Unwritable bad)
      | Bit_rot ->
        t.pending_rot <- Some (lba + Prng.int t.prng sectors);
        None
      | Transient_read _ -> None
    end

let on_read t ~lba ~sectors =
  flush t;
  match defect_in t ~lba ~sectors with
  | Some bad -> Some (Disk.Disk_sim.Unreadable bad)
  | None -> (
    let n = t.reads_seen in
    t.reads_seen <- n + 1;
    match t.kind with
    | Transient_read fails ->
      if (not t.armed) && (not t.fired) && n = t.trigger then begin
        t.armed <- true;
        t.fired <- true;
        t.transient_left <- fails
      end;
      if t.armed && t.transient_left > 0 then begin
        t.transient_left <- t.transient_left - 1;
        Some Disk.Disk_sim.Transient_read
      end
      else None
    | _ -> None)

let install t disk =
  t.disk <- Some disk;
  Disk.Disk_sim.set_injector disk
    (Some
       {
         Disk.Disk_sim.on_read = (fun ~lba ~sectors -> on_read t ~lba ~sectors);
         on_write = (fun ~lba ~sectors -> on_write t ~lba ~sectors);
       })
