(** Multi-disk volume manager: N independent {!Disk.Disk_sim} drives
    behind one {!Blockdev.Device.t}, with mirroring, whole-drive failure
    tolerance, degraded-mode I/O, and online rebuild onto hot spares.

    A volume is [k] groups of [m] mirror legs; each leg is a full
    logical-disk stack ({!Blockdev.Vld} or {!Blockdev.Regular_disk})
    formatted over its own drive.  Block [b] lives in group [b mod k] as
    group block [b / k] on every leg of that group.

    Failure model: a leg that fails an I/O turns [Suspect] (skipped
    while in backoff, its missed writes logged in a volatile per-leg
    dirty-region set); a suspect that keeps failing probes is retired to
    [Dead] and, when a hot spare is configured, resilvered in the
    background.  Reads fail over across legs; writes succeed as long as
    one leg takes them.  A leg only returns to [Healthy] once its
    dirty-region set has drained — the crash resync trusts healthy legs,
    so a stale one must never wear the label.

    Data path: each leg owns a tagged {!Disk.Disk_queue.t} (SATF by
    default for VLD legs, FIFO for regular legs) and a private
    [busy_until] timeline on the shared clock.  A volume operation
    scatters per-leg commands, runs each leg's queue in its own window
    — warping the shared clock to each leg's dispatch instant — and
    gathers completions; a mirror write therefore completes at the
    {e max} of the legs' service times, not their sum, and striped
    operations fan out across spindles concurrently.  Rebuild copies
    ride the target leg's queue as low-priority background tags with a
    duty-cycle throttle ({!policy.rebuild_util}), so resilvering steals
    bounded bandwidth from foreground I/O instead of blocking it.
    Administrative paths (probe, resync, settle, {!rebuild_to_completion})
    stay sequential on the shared clock. *)

type layout =
  | Stripe of int  (** [k] groups of one leg: capacity, no redundancy *)
  | Mirror of int  (** one group of [m] legs *)
  | Stripe_of_mirrors of int * int  (** [k] groups of [m] legs (RAID-10) *)

type leg_kind = Regular_leg | Vld_leg

type policy = {
  timeout_ms : float;  (** per-operation budget once one leg has the data *)
  backoff_ms : float;  (** how long a [Suspect] leg is left alone *)
  probes_to_kill : int;  (** consecutive probe failures that retire a leg *)
  rebuild_util : float;
      (** fraction of a rebuilding leg's time background copies may use
          (duty-cycle throttle); [1.] = unthrottled *)
}

val default_policy : policy
(** 50 ms budget, 200 ms backoff, 2 probes, rebuild duty cycle 0.5. *)

val n_legs : layout -> int
(** Drives the layout needs.  Raises [Invalid_argument] on degenerate
    shapes (stripe width < 1, mirror width < 2). *)

val layout_to_string : layout -> string
(** ["stripe:2"], ["mirror:2"], ["raid10:2x2"]. *)

type t

val default_queue_policy : leg_kind -> Disk.Disk_queue.policy
(** [Satf] for VLD legs (eager placement prices itself near the head),
    [Fifo] for regular legs. *)

val create :
  ?policy:policy ->
  ?queue_policy:Disk.Disk_queue.policy ->
  ?spare:(unit -> Disk.Disk_sim.t) ->
  layout:layout ->
  leg_kind:leg_kind ->
  logical_blocks:int ->
  disks:Disk.Disk_sim.t array ->
  prng:Vlog_util.Prng.t ->
  unit ->
  t
(** Format a fresh volume over exactly [n_legs layout] drives sharing
    one clock.  [queue_policy] (default {!default_queue_policy}) is the
    per-leg tagged-queue scheduling policy.  [spare] supplies a blank
    drive whenever a leg dies, so rebuilds start automatically; without
    it dead legs stay dead until {!start_rebuild}. *)

type recovery_report = {
  legs_recovered : int;
  legs_lost : int;  (** legs whose platters did not recover; volume degraded *)
  legs_used_tail : int;  (** VLD legs brought up via the landing-zone tail *)
  resync_fixed : int;  (** group-blocks converged onto the primary's content *)
  resync_lost : int;  (** group-blocks unreadable on every surviving leg *)
}

val recover :
  ?policy:policy ->
  ?queue_policy:Disk.Disk_queue.policy ->
  ?spare:(unit -> Disk.Disk_sim.t) ->
  layout:layout ->
  leg_kind:leg_kind ->
  logical_blocks:int ->
  disks:Disk.Disk_sim.t array ->
  prng:Vlog_util.Prng.t ->
  unit ->
  (t * recovery_report, string) result
(** Bring a volume back from [n_legs layout] post-crash drives: recover
    each leg independently (an unrecoverable leg becomes [Dead], not an
    error), resync every mirror group onto its first readable leg —
    writes go to legs in index order, so that leg is the newest
    surviving state — and start rebuilds for dead legs if [spare] is
    given.  [Error] only when some group has no surviving leg at all:
    honest data loss. *)

val device : t -> Blockdev.Device.t
(** The volume as a block device.  [submit]/[poll]/[drain] are native:
    requests drain in submission order, each starting at its own arrival
    timestamp on whatever legs it touches, so requests on disjoint
    spindles overlap in simulated time.  [idle] pumps rebuild background
    copies and the VLD legs' compactors, each in its leg's own window. *)

(** {1 Native host queue}

    The same submit/poll/drain the device record wraps, with arrival
    timestamps and tenant attribution exposed.  [submit_req ?at ?owner]
    enqueues a request arriving at [at] (default now; may lie anywhere
    on the timeline — a closed-loop driver submits each replacement op
    at its predecessor's completion instant).  [owner] tags every disk
    command the request scatters, feeding per-tenant latency histograms
    in the legs' trace sinks. *)

val submit_req : ?at:float -> ?owner:string -> t -> Blockdev.Device.req -> int
val poll_reqs : t -> (int * Blockdev.Device.ack) list
val drain_reqs : t -> (int * Blockdev.Device.ack) list

(** {1 Timestamped operations}

    The engine underneath the host queue, for drivers that need exact
    per-operation completion instants: each call executes one operation
    arriving at [at] and leaves the clock {e at that operation's
    completion}, so [Clock.now - at] is the operation's wall latency.
    The batch forms scatter a whole set of blocks at one arrival — every
    involved leg services its commands in one window (its queue policy
    reorders within), which is how a host drives the legs' queues to
    depth > 1. *)

val read_result_at :
  t ->
  ?owner:string ->
  at:float ->
  int ->
  (Bytes.t * Vlog_util.Io.completion, Blockdev.Device.io_error) result

val write_result_at :
  t ->
  ?owner:string ->
  at:float ->
  int ->
  Bytes.t ->
  (Vlog_util.Io.completion, Blockdev.Device.io_error) result

val write_batch :
  t ->
  ?owner:string ->
  at:float ->
  (int * Bytes.t) list ->
  (Vlog_util.Breakdown.t, Blockdev.Device.io_error) result
(** All writes arrive at [at]; the result breakdown is the sum of the
    mechanical work of every successful leg command, while the clock
    ends at the batch completion (the latest awaited leg). *)

val read_batch :
  t ->
  ?owner:string ->
  at:float ->
  int list ->
  ((Bytes.t * Vlog_util.Breakdown.t) list, Blockdev.Device.io_error) result

(** {2 Structured batch reports}

    [write_batch]/[read_batch] report only the first failing block.
    When a leg faults {e mid-window} the batch gathers partially — some
    blocks land (possibly degraded), others fail — and a degraded-mode
    retry must know exactly which, or it will re-submit commands that
    already completed.  The [_report] variants return the full
    per-block outcome instead of first-error-wins. *)

type block_error = { be_block : int; be_error : Blockdev.Device.io_error }

type write_report = {
  wr_written : int list;  (** blocks durably on ≥ 1 leg, in request order *)
  wr_failed : block_error list;
      (** blocks no leg took, in request order — the only ones a retry
          may re-submit *)
  wr_degraded : bool;
      (** some copy was skipped or failed and is owed via a DRL *)
  wr_bd : Vlog_util.Breakdown.t;
}

type read_report = {
  rr_data : (int * Bytes.t * Vlog_util.Breakdown.t) list;
      (** blocks read (block, payload, mechanical cost), request order *)
  rr_failed : block_error list;
}

val write_batch_report :
  t -> ?owner:string -> at:float -> (int * Bytes.t) list -> write_report

val read_batch_report : t -> ?owner:string -> at:float -> int list -> read_report

(** {1 Failure management} *)

val kill : t -> group:int -> leg:int -> unit
(** Administratively retire a leg (no spare swap, no probation). *)

val start_rebuild : t -> group:int -> leg:int -> (unit, string) result
(** Resilver a [Dead] leg onto a hot spare.  [Error] if the leg is not
    dead or no spare is configured. *)

val rebuild_active : t -> bool

val rebuild_to_completion : t -> unit
(** Drive every active rebuild to the end (foreground, simulated time
    advances).  Gives up on legs whose source blocks stay unreadable. *)

val rebuild_step : t -> copies:int -> unit
(** Foreground-blocking rebuild: copy up to [copies] group blocks of
    every rebuilding leg {e now}, sequentially on the shared clock — the
    pre-queue cursor-sweep behaviour, kept as the baseline the array
    bench compares throttled background rebuild against. *)

val idle : t -> float -> unit
(** Grant [dt] ms of idle time starting now: pump throttled background
    rebuild copies and the VLD legs' compactors, each in its own leg's
    window, never past the deadline.  The clock ends at the last
    background activity (at most [now + dt]). *)

val settle : t -> unit
(** Quiesce the failure machinery: probe suspects, finish rebuilds,
    drain dirty-region sets — and retire any leg that will not drain
    within a bounded number of rounds.  Afterwards every leg is either
    fully [Healthy] with an empty dirty-region set, or [Dead]. *)

(** {1 Introspection} *)

val layout : t -> layout
val policy : t -> policy

val queue_policy : t -> Disk.Disk_queue.policy
(** The scheduling policy every leg's tagged queue runs. *)

val leg_busy_until : t -> group:int -> leg:int -> float
(** End of the leg's last service window on its private timeline. *)

val n_groups : t -> int
val legs_per_group : t -> int
val group_blocks : t -> int
val logical_blocks : t -> int
val block_bytes : t -> int
val clock : t -> Vlog_util.Clock.t

val disks : t -> Disk.Disk_sim.t array
(** Current drive of every leg, group-major; spares appear in place of
    the drives they replaced. *)

val state_of :
  t -> group:int -> leg:int -> [ `Healthy | `Suspect | `Dead | `Rebuilding of int ]
(** [`Rebuilding c]: the resilver cursor has copied group blocks below [c]. *)

val state_to_string :
  [ `Healthy | `Suspect | `Dead | `Rebuilding of int ] -> string

val degraded : t -> bool
(** Some leg is not [`Healthy]. *)

val drl_size : t -> int
(** Total dirty-region entries across all legs. *)

val leg_read_raw :
  t -> group:int -> leg:int -> int -> (Bytes.t, Blockdev.Device.io_error) result
(** Read one group block from one specific leg, bypassing failover —
    how the volume checker cross-examines mirror copies. *)

val leg_drl_size : t -> group:int -> leg:int -> int
val leg_dirty : t -> group:int -> leg:int -> int -> bool

val group_has_data : t -> group:int -> int -> bool
(** Some live leg may hold real data for this group block (always true
    for regular legs, whose write history is volatile). *)

val pp_status : Format.formatter -> t -> unit
(** The [vlsim volume status] leg map. *)
