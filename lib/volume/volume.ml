(* Multi-disk volume manager: N simulated spindles behind the one
   [Device.t] record the file systems already run on.

   A volume is k stripe groups of m mirror legs each ([Stripe] is k x 1,
   [Mirror] is 1 x m, [Stripe_of_mirrors] is k x m).  Logical block [b]
   lives at group [b mod k], group-block [b / k]; each leg is a complete
   logical disk of its own — a [Regular_disk] or a [Vld], so eager
   writing composes per-spindle, every leg keeping its own head-local
   free pool.

   Robustness model:
   - reads fail over across mirror legs; writes that cannot reach a leg
     record the block in that leg's dirty-region log (DRL) and succeed as
     long as one leg took the data;
   - a failing leg goes [Suspect] and is left alone for a backoff window;
     a later access probes it — success drains its DRL from a peer and
     revives it, [probes_to_kill] consecutive failures retire it;
   - a per-operation time budget bounds how long a hung leg can stall
     the volume: once one leg has the data, legs that would push the
     operation past [timeout_ms] are skipped (and DRL'd) instead;
   - a retired leg is resilvered onto a hot-spare drive in the background
     ([Rebuilding] cursor sweep + DRL for writes landing behind it) while
     foreground I/O continues;
   - [recover] brings every leg back from its platters and then resyncs
     mirror groups: writes go to legs in index order, so the lowest live
     leg is always newest and the group converges to its content.

   All legs share one simulated clock; leg operations are serviced
   sequentially on it (a deliberate simplification — a real array issues
   mirror writes in parallel). *)

open Vlog_util

type layout =
  | Stripe of int
  | Mirror of int
  | Stripe_of_mirrors of int * int

type leg_kind = Regular_leg | Vld_leg

type policy = {
  timeout_ms : float;  (** per-operation budget once one leg has the data *)
  backoff_ms : float;  (** how long a [Suspect] leg is left alone *)
  probes_to_kill : int;  (** consecutive probe failures that retire a leg *)
}

let default_policy = { timeout_ms = 50.; backoff_ms = 200.; probes_to_kill = 2 }

let layout_shape = function
  | Stripe k ->
    if k < 1 then invalid_arg "Volume: stripe needs at least 1 leg";
    (k, 1)
  | Mirror m ->
    if m < 2 then invalid_arg "Volume: mirror needs at least 2 legs";
    (1, m)
  | Stripe_of_mirrors (k, m) ->
    if k < 1 || m < 2 then
      invalid_arg "Volume: stripe of mirrors needs k >= 1 groups of m >= 2 legs";
    (k, m)

let n_legs layout =
  let k, m = layout_shape layout in
  k * m

let layout_to_string = function
  | Stripe k -> Printf.sprintf "stripe:%d" k
  | Mirror m -> Printf.sprintf "mirror:%d" m
  | Stripe_of_mirrors (k, m) -> Printf.sprintf "raid10:%dx%d" k m

type leg_impl = Vld of Blockdev.Vld.t | Reg of Blockdev.Regular_disk.t

type leg = {
  mutable impl : leg_impl;
  mutable disk : Disk.Disk_sim.t;
  mutable state : [ `Healthy | `Suspect | `Dead | `Rebuilding ];
  mutable cursor : int; (* rebuild sweep position, meaningful while `Rebuilding *)
  drl : (int, unit) Hashtbl.t; (* group-blocks this leg does not have yet *)
  mutable failed_probes : int;
  mutable retry_after : float; (* Suspect: do not touch before this time *)
}

type t = {
  layout : layout;
  leg_kind : leg_kind;
  policy : policy;
  logical_blocks : int;
  group_blocks : int;
  block_bytes : int;
  groups : leg array array;
  clock : Clock.t;
  trace : Trace.sink;
  prng : Prng.t;
  mutable spare : (unit -> Disk.Disk_sim.t) option;
}

let leg_spare_blocks = 8

let format_leg ~leg_kind ~group_blocks ~prng disk =
  match leg_kind with
  | Vld_leg ->
    Vld (Blockdev.Vld.create ~disk ~logical_blocks:group_blocks ~prng ())
  | Regular_leg ->
    Reg (Blockdev.Regular_disk.create ~disk ~spare_blocks:leg_spare_blocks ())

let leg_block_bytes leg =
  match leg.impl with
  | Vld v -> Vlog.Virtual_log.block_bytes (Blockdev.Vld.vlog v)
  | Reg r -> (Blockdev.Regular_disk.device r).Blockdev.Device.block_bytes

(* ---- Leg primitives ---- *)

let synth_err op gb = { Blockdev.Device.op; block = gb; error_lba = 0; retries = 0 }

let leg_read leg gb =
  match leg.impl with
  | Vld v -> Blockdev.Vld.read_result v gb
  | Reg r -> Blockdev.Regular_disk.read_result r gb

(* A wedged VLD leg (allocation reserve exhausted, persistent map-write
   failures) raises [Failure]; the volume degrades the leg instead of
   crashing.  [Power_cut] still propagates — power is volume-wide. *)
let leg_write leg gb buf =
  match
    match leg.impl with
    | Vld v -> Blockdev.Vld.write_result v gb buf
    | Reg r -> Blockdev.Regular_disk.write_result r gb buf
  with
  | r -> r
  | exception Failure _ -> Error (synth_err `Write gb)

let leg_trim leg gb =
  match leg.impl with
  | Reg _ -> ()
  | Vld v -> (
    let vl = Blockdev.Vld.vlog v in
    match Vlog.Virtual_log.lookup vl gb with
    | None -> ()
    | Some _ -> (
      try ignore (Vlog.Virtual_log.update vl [ (gb, None) ])
      with Failure _ -> ()))

(* Whether the leg provably holds nothing at [gb].  Only a VLD's answer
   is persistent (the indirection map survives remount); a regular leg's
   written bitmap is volatile, so it must never be used to skip blocks
   after a crash — callers copy everything instead. *)
let leg_skip_unmapped leg =
  match leg.impl with Vld _ -> true | Reg _ -> false

let leg_mapped leg gb =
  match leg.impl with
  | Vld v -> Vlog.Virtual_log.lookup (Blockdev.Vld.vlog v) gb <> None
  | Reg r -> Blockdev.Regular_disk.written r gb

let leg_utilization leg =
  match leg.impl with
  | Vld v -> Vlog.Freemap.utilization (Vlog.Virtual_log.freemap (Blockdev.Vld.vlog v))
  | Reg r -> (Blockdev.Regular_disk.device r).Blockdev.Device.utilization ()

(* A probe must touch the media (a VLD answers unmapped reads from its
   in-memory map), so read one raw sector — lba 0 always exists. *)
let probe_leg t leg =
  Trace.incr t.trace "vol.probes";
  match Disk.Disk_sim.read_checked ~scsi:true leg.disk ~lba:0 ~sectors:1 with
  | Ok _, _ -> true
  | Error _, _ -> false

(* ---- Failure handling, revival, rebuild ---- *)

let start_rebuild_on t leg disk =
  leg.disk <- disk;
  leg.impl <-
    format_leg ~leg_kind:t.leg_kind ~group_blocks:t.group_blocks
      ~prng:(Prng.split t.prng) disk;
  Hashtbl.reset leg.drl;
  leg.cursor <- 0;
  leg.failed_probes <- 0;
  leg.state <- `Rebuilding;
  Trace.incr t.trace "vol.rebuilds_started"

let kill_leg t leg =
  leg.state <- `Dead;
  Trace.incr t.trace "vol.leg_deaths";
  match t.spare with
  | None -> ()
  | Some factory -> start_rebuild_on t leg (factory ())

let note_failure t leg =
  match leg.state with
  | `Dead -> ()
  | `Healthy ->
    leg.state <- `Suspect;
    leg.failed_probes <- 1;
    leg.retry_after <- Clock.now t.clock +. t.policy.backoff_ms
  | `Suspect ->
    leg.failed_probes <- leg.failed_probes + 1;
    leg.retry_after <- Clock.now t.clock +. t.policy.backoff_ms;
    if leg.failed_probes > t.policy.probes_to_kill then kill_leg t leg
  | `Rebuilding ->
    (* the replacement itself is failing: retire it and pull another spare *)
    kill_leg t leg

(* Copy one group-block onto [to_] from the best surviving peer.  A
   mapped source block's bytes are written; a provable source hole is
   propagated as a trim, so a fresh VLD leg is not flooded with zeroes. *)
let copy_block t group ~to_ ~counter gb =
  let src =
    Array.fold_left
      (fun acc leg ->
        match acc with
        | Some _ -> acc
        | None ->
          if leg != to_ && leg.state = `Healthy && not (Hashtbl.mem leg.drl gb)
          then Some leg
          else None)
      None group
  in
  match src with
  | None -> Error `No_source
  | Some src ->
    if leg_skip_unmapped src && not (leg_mapped src gb) then begin
      leg_trim to_ gb;
      Ok ()
    end
    else (
      match leg_read src gb with
      | Error _ -> Error `Unreadable
      | Ok (data, _) -> (
        match leg_write to_ gb data with
        | Ok _ ->
          Trace.incr t.trace counter;
          Ok ()
        | Error _ -> Error `Write_failed))

let drain_drl t group leg =
  let gbs = List.sort compare (Hashtbl.fold (fun gb () acc -> gb :: acc) leg.drl []) in
  List.iter
    (fun gb ->
      match copy_block t group ~to_:leg ~counter:"vol.resync_copies" gb with
      | Ok () -> Hashtbl.remove leg.drl gb
      | Error _ -> () (* stays dirty; reads keep avoiding it *))
    gbs

(* A leg may only return to [`Healthy] with an empty DRL: a healthy leg
   is trusted as a resync primary after a crash (the DRL itself is
   volatile), so reviving one that still holds stale blocks could
   resurrect old data.  If the drain cannot finish — the peer flaking,
   say — the leg stays suspect and retries after another backoff. *)
let revive t group leg =
  drain_drl t group leg;
  if Hashtbl.length leg.drl = 0 then begin
    leg.failed_probes <- 0;
    leg.state <- `Healthy;
    Trace.incr t.trace "vol.revives"
  end
  else leg.retry_after <- Clock.now t.clock +. t.policy.backoff_ms

(* One unit of rebuild work: advance the cursor sweep, then drain the
   DRL, then flip the leg healthy. *)
let rebuild_tick t group leg =
  if leg.cursor < t.group_blocks then begin
    let gb = leg.cursor in
    match copy_block t group ~to_:leg ~counter:"vol.rebuild_copies" gb with
    | Ok () ->
      leg.cursor <- leg.cursor + 1;
      `Progress
    | Error `Unreadable ->
      (* no surviving copy of this block: honest loss, keep resilvering *)
      Trace.incr t.trace "vol.rebuild_lost";
      leg.cursor <- leg.cursor + 1;
      `Progress
    | Error (`No_source | `Write_failed) -> `Blocked
  end
  else
    match Hashtbl.fold (fun gb () _ -> Some gb) leg.drl None with
    | None ->
      leg.state <- `Healthy;
      leg.failed_probes <- 0;
      Trace.incr t.trace "vol.rebuilds_completed";
      `Done
    | Some gb -> (
      match copy_block t group ~to_:leg ~counter:"vol.rebuild_copies" gb with
      | Ok () ->
        Hashtbl.remove leg.drl gb;
        `Progress
      | Error `Unreadable ->
        Hashtbl.remove leg.drl gb;
        Trace.incr t.trace "vol.rebuild_lost";
        `Progress
      | Error _ -> `Blocked)

let iter_legs t f = Array.iter (fun group -> Array.iter (f group) group) t.groups

let rebuild_active t =
  let any = ref false in
  iter_legs t (fun _ leg -> if leg.state = `Rebuilding then any := true);
  !any

(* Background resilvering during granted idle time: copy until the
   deadline, leaving the rest for the next window. *)
let rebuild_pump t ~deadline =
  iter_legs t (fun group leg ->
      let continue_ = ref (leg.state = `Rebuilding) in
      while !continue_ && Clock.now t.clock < deadline do
        match rebuild_tick t group leg with
        | `Progress -> ()
        | `Done | `Blocked -> continue_ := false
      done)

let probe_suspects t =
  iter_legs t (fun group leg ->
      if leg.state = `Suspect && Clock.now t.clock >= leg.retry_after then
        if probe_leg t leg then revive t group leg else note_failure t leg)

let rebuild_to_completion t =
  let blocked = ref 0 in
  let rec go () =
    let progress = ref false and any = ref false in
    iter_legs t (fun group leg ->
        if leg.state = `Rebuilding then begin
          any := true;
          match rebuild_tick t group leg with
          | `Progress | `Done -> progress := true
          | `Blocked -> ()
        end);
    if !any then
      if !progress then begin
        blocked := 0;
        go ()
      end
      else if !blocked < 64 then begin
        (* no usable source right now: give hung peers a backoff window
           to come back, then retry *)
        incr blocked;
        Clock.advance t.clock t.policy.backoff_ms;
        probe_suspects t;
        go ()
      end
  in
  go ()

(* Deterministic quiescence for harnesses: probe every suspect until it
   revives or dies (advancing simulated time through the backoff
   windows), run rebuilds to completion, and drain every DRL.  On
   return each leg is either fully healthy with an empty DRL, or dead
   (no spare available) — never a trusted leg holding stale blocks.  A
   leg that refuses to settle within the round bound is retired: it
   cannot be allowed to survive a crash as a resync primary. *)
let settle t =
  let unsettled () =
    let any = ref false in
    iter_legs t (fun _ leg ->
        match leg.state with
        | `Suspect | `Rebuilding -> any := true
        | `Healthy -> if Hashtbl.length leg.drl > 0 then any := true
        | `Dead -> ());
    !any
  in
  let rec go n =
    probe_suspects t;
    rebuild_to_completion t;
    iter_legs t (fun group leg ->
        if leg.state = `Healthy && Hashtbl.length leg.drl > 0 then
          drain_drl t group leg);
    if unsettled () then
      if n > 0 then begin
        Clock.advance t.clock t.policy.backoff_ms;
        go (n - 1)
      end
      else begin
        iter_legs t (fun _ leg ->
            if
              leg.state = `Suspect
              || (leg.state = `Healthy && Hashtbl.length leg.drl > 0)
            then kill_leg t leg);
        rebuild_to_completion t
      end
  in
  go (4 * (t.policy.probes_to_kill + 2))

(* ---- Group operations ---- *)

let locate t b =
  let k = Array.length t.groups in
  (b mod k, b / k)

(* Mirror write: every leg that can reasonably take the block gets it;
   legs skipped for backoff, budget, or failure get the block in their
   DRL instead.  The operation succeeds if at least one leg has the
   data. *)
let group_write t gi gb buf =
  let group = t.groups.(gi) in
  let start = Clock.now t.clock in
  let bd = ref Breakdown.zero in
  let wrote = ref 0 in
  let degraded = ref false in
  let last_err = ref None in
  Array.iter
    (fun leg ->
      let dirty () =
        Hashtbl.replace leg.drl gb ();
        degraded := true
      in
      match leg.state with
      | `Dead -> ()
      | `Rebuilding ->
        (* the cursor sweep will copy everything at or past it from a
           peer; only the already-rebuilt region must be kept current *)
        if gb < leg.cursor then (
          match leg_write leg gb buf with
          | Ok c ->
            bd := Breakdown.add !bd c.Io.breakdown;
            Hashtbl.remove leg.drl gb;
            incr wrote
          | Error e ->
            last_err := Some e;
            dirty ();
            note_failure t leg)
      | (`Suspect | `Healthy) as st ->
        let now = Clock.now t.clock in
        let in_backoff = st = `Suspect && now < leg.retry_after in
        (* the budget bounds how long suspects may stall the op once the
           data is safe somewhere; healthy legs are always written *)
        let over_budget =
          st = `Suspect && !wrote > 0 && now -. start > t.policy.timeout_ms
        in
        if in_backoff || over_budget then dirty ()
        else (
          match leg_write leg gb buf with
          | Ok c ->
            bd := Breakdown.add !bd c.Io.breakdown;
            Hashtbl.remove leg.drl gb;
            incr wrote;
            if st = `Suspect then revive t group leg
          | Error e ->
            last_err := Some e;
            dirty ();
            note_failure t leg))
    group;
  if !degraded && !wrote > 0 then Trace.incr t.trace "vol.degraded_writes";
  if !wrote > 0 then Ok !bd
  else
    Error
      (match !last_err with
      | Some e -> { e with Blockdev.Device.block = gb }
      | None -> synth_err `Write gb)

(* Mirror read with failover: healthy legs first, then the rebuilt
   region of a rebuilding leg, then suspects past their backoff (the
   read doubles as the probe).  Blocks in a leg's DRL are never read
   from it.  Once one candidate has been tried, the per-op budget stops
   further probing. *)
let group_read t gi gb =
  let group = t.groups.(gi) in
  let start = Clock.now t.clock in
  let now () = Clock.now t.clock in
  let eligible leg =
    (not (Hashtbl.mem leg.drl gb))
    &&
    match leg.state with
    | `Healthy -> true
    | `Rebuilding -> gb < leg.cursor
    | `Suspect -> now () >= leg.retry_after
    | `Dead -> false
  in
  let tier leg =
    match leg.state with `Healthy -> 0 | `Rebuilding -> 1 | `Suspect -> 2 | `Dead -> 3
  in
  let candidates =
    let all = Array.to_list group in
    let first = List.filter eligible all in
    if first <> [] then first
    else
      (* last resort: suspects still in backoff — better a slow answer
         than none *)
      List.filter
        (fun leg -> leg.state = `Suspect && not (Hashtbl.mem leg.drl gb))
        all
  in
  let candidates = List.stable_sort (fun a b -> compare (tier a) (tier b)) candidates in
  let rec go tried = function
    | [] ->
      Error
        (match tried with
        | Some e -> { e with Blockdev.Device.block = gb }
        | None -> synth_err `Read gb)
    | leg :: rest ->
      if
        leg.state = `Suspect && tried <> None
        && now () -. start > t.policy.timeout_ms
      then
        (* budget exhausted: no further probing of suspects (healthy
           candidates sort first, so none is being skipped here) *)
        go tried []
      else (
        match leg_read leg gb with
        | Ok (data, c) ->
          if leg.state = `Suspect then revive t group leg;
          Ok (data, c.Io.breakdown)
        | Error e ->
          note_failure t leg;
          if rest <> [] then Trace.incr t.trace "vol.failovers";
          go (Some e) rest)
  in
  go None candidates

let group_trim t gi gb =
  Array.iter
    (fun leg ->
      match leg.state with
      | `Dead -> ()
      | `Rebuilding | `Suspect | `Healthy -> leg_trim leg gb)
    t.groups.(gi)

(* ---- Construction ---- *)

let mk ?(policy = default_policy) ?spare ~layout ~leg_kind ~logical_blocks
    ~(disks : Disk.Disk_sim.t array) ~prng ~mk_leg () =
  let k, m = layout_shape layout in
  if Array.length disks <> k * m then
    invalid_arg
      (Printf.sprintf "Volume: layout %s needs %d disks, got %d"
         (layout_to_string layout) (k * m) (Array.length disks));
  if logical_blocks < 1 then invalid_arg "Volume: need at least one logical block";
  let group_blocks = (logical_blocks + k - 1) / k in
  let groups =
    Array.init k (fun gi -> Array.init m (fun li -> mk_leg ~group_blocks disks.((gi * m) + li) gi li))
  in
  let t =
    {
      layout;
      leg_kind;
      policy;
      logical_blocks;
      group_blocks;
      block_bytes = leg_block_bytes groups.(0).(0);
      groups;
      clock = Disk.Disk_sim.clock disks.(0);
      trace = Disk.Disk_sim.trace disks.(0);
      prng;
      spare;
    }
  in
  t

let fresh_leg ~leg_kind ~prng ~group_blocks disk _gi _li =
  {
    impl = format_leg ~leg_kind ~group_blocks ~prng:(Prng.split prng) disk;
    disk;
    state = `Healthy;
    cursor = 0;
    drl = Hashtbl.create 8;
    failed_probes = 0;
    retry_after = 0.;
  }

let create ?policy ?spare ~layout ~leg_kind ~logical_blocks ~disks ~prng () =
  mk ?policy ?spare ~layout ~leg_kind ~logical_blocks ~disks ~prng
    ~mk_leg:(fun ~group_blocks disk gi li ->
      fresh_leg ~leg_kind ~prng ~group_blocks disk gi li)
    ()

(* ---- Recovery ---- *)

type recovery_report = {
  legs_recovered : int;
  legs_lost : int;  (** legs whose platters did not recover; volume degraded *)
  legs_used_tail : int;  (** VLD legs brought up via the landing-zone tail *)
  resync_fixed : int;  (** group-blocks converged onto the primary's content *)
  resync_lost : int;  (** group-blocks unreadable on every surviving leg *)
}

(* Converge every mirror group onto its lowest live leg: writes are
   issued to legs in index order, so that leg is always the newest
   surviving state, and per-leg recovery already rolled each leg back to
   a self-consistent transaction boundary.  Healing writes also repair
   single-leg media damage from the surviving copy. *)
let resync t report =
  let fixed = ref 0 and lost = ref 0 in
  Array.iter
    (fun group ->
      if Array.length group > 1 then
        for gb = 0 to t.group_blocks - 1 do
          let live =
            Array.to_list group |> List.filter (fun leg -> leg.state = `Healthy)
          in
          let skippable =
            live <> []
            && List.for_all
                 (fun leg -> leg_skip_unmapped leg && not (leg_mapped leg gb))
                 live
          in
          if (not skippable) && List.length live > 1 then begin
            let reads = List.map (fun leg -> (leg, leg_read leg gb)) live in
            match
              List.find_opt (fun (_, r) -> Result.is_ok r) reads
            with
            | None -> incr lost
            | Some (primary, pread) ->
              let pdata = match pread with Ok (d, _) -> d | Error _ -> assert false in
              let phole = leg_skip_unmapped primary && not (leg_mapped primary gb) in
              let mend = ref false in
              List.iter
                (fun (leg, r) ->
                  if leg != primary then
                    let differs =
                      match r with
                      | Error _ -> true
                      | Ok (d, _) -> not (Bytes.equal d pdata)
                    in
                    if differs then begin
                      mend := true;
                      if phole then leg_trim leg gb
                      else
                        match leg_write leg gb pdata with
                        | Ok _ -> Trace.incr t.trace "vol.resync_copies"
                        | Error _ -> Hashtbl.replace leg.drl gb ()
                    end)
                reads;
              if !mend then incr fixed
          end
        done)
    t.groups;
  { report with resync_fixed = !fixed; resync_lost = !lost }

let recover ?policy ?spare ~layout ~leg_kind ~logical_blocks ~disks ~prng () =
  let recovered = ref 0 and lost = ref 0 and used_tail = ref 0 in
  let t =
    mk ?policy ?spare ~layout ~leg_kind ~logical_blocks ~disks ~prng
      ~mk_leg:(fun ~group_blocks:_ disk _gi _li ->
        let impl, state =
          match leg_kind with
          | Regular_leg ->
            (* a regular leg has no volatile metadata to rebuild: wrapping
               the platters is the whole recovery *)
            incr recovered;
            ( Reg
                (Blockdev.Regular_disk.create ~disk
                   ~spare_blocks:leg_spare_blocks ()),
              `Healthy )
          | Vld_leg -> (
            match Blockdev.Vld.recover ~disk ~prng:(Prng.split prng) () with
            | Ok (v, rep) ->
              incr recovered;
              if rep.Vlog.Virtual_log.used_tail then incr used_tail;
              (Vld v, `Healthy)
            | Error _ ->
              (* platters unrecoverable: dead on arrival.  The placeholder
                 impl never runs — `Dead gates every access — and wrapping
                 a regular disk writes nothing to the media. *)
              incr lost;
              (Reg (Blockdev.Regular_disk.create ~disk ()), `Dead))
        in
        {
          impl;
          disk;
          state;
          cursor = 0;
          drl = Hashtbl.create 8;
          failed_probes = 0;
          retry_after = 0.;
        })
      ()
  in
  let orphaned = ref [] in
  Array.iteri
    (fun gi group ->
      if not (Array.exists (fun leg -> leg.state <> `Dead) group) then
        orphaned := gi :: !orphaned)
    t.groups;
  match !orphaned with
  | gi :: _ ->
    Error
      (Printf.sprintf
         "data loss: group %d has no surviving leg (every mirror copy is gone)"
         gi)
  | [] ->
    let report =
      {
        legs_recovered = !recovered;
        legs_lost = !lost;
        legs_used_tail = !used_tail;
        resync_fixed = 0;
        resync_lost = 0;
      }
    in
    let report = resync t report in
    (* a dead-on-arrival leg starts rebuilding immediately if a spare is
       on hand *)
    iter_legs t (fun _ leg ->
        if leg.state = `Dead then
          match t.spare with
          | Some factory -> start_rebuild_on t leg (factory ())
          | None -> ());
    Ok (t, report)

(* ---- The Device face ---- *)

let check t block count =
  if block < 0 || count <= 0 || block + count > t.logical_blocks then
    invalid_arg "Volume: logical block range out of bounds"

let dev_span t name block count =
  if Trace.enabled t.trace then
    Trace.enter t.trace
      ~attrs:[ ("block", string_of_int block); ("count", string_of_int count) ]
      name
  else Io.no_span

let read_result t block =
  check t block 1;
  let sp = dev_span t "vol.read" block 1 in
  let gi, gb = locate t block in
  match group_read t gi gb with
  | Ok (data, bd) ->
    Trace.exit t.trace ~bd sp;
    Ok (data, Io.make ~span:sp bd)
  | Error e ->
    Trace.exit t.trace sp;
    Error { e with Blockdev.Device.block }

let write_result t block buf =
  check t block 1;
  if Bytes.length buf <> t.block_bytes then
    invalid_arg "Volume.write: buffer must be exactly one block";
  let sp = dev_span t "vol.write" block 1 in
  let gi, gb = locate t block in
  match group_write t gi gb buf with
  | Ok bd ->
    Trace.exit t.trace ~bd sp;
    Ok (Io.make ~span:sp bd)
  | Error e ->
    Trace.exit t.trace sp;
    Error { e with Blockdev.Device.block }

let read_run_result t block count =
  check t block count;
  let sp = dev_span t "vol.read_run" block count in
  let out = Bytes.create (count * t.block_bytes) in
  let bd = ref Breakdown.zero in
  let rec go i =
    if i >= count then Ok ()
    else
      let gi, gb = locate t (block + i) in
      match group_read t gi gb with
      | Ok (data, cost) ->
        Bytes.blit data 0 out (i * t.block_bytes) t.block_bytes;
        bd := Breakdown.add !bd cost;
        go (i + 1)
      | Error e -> Error { e with Blockdev.Device.block = block + i }
  in
  match go 0 with
  | Ok () ->
    Trace.exit t.trace ~bd:!bd sp;
    Ok (out, Io.make ~span:sp !bd)
  | Error e ->
    Trace.exit t.trace ~bd:!bd sp;
    Error e

let write_run_result t block buf =
  if Bytes.length buf = 0 || Bytes.length buf mod t.block_bytes <> 0 then
    invalid_arg "Volume.write_run: buffer must be whole blocks";
  let count = Bytes.length buf / t.block_bytes in
  check t block count;
  let sp = dev_span t "vol.write_run" block count in
  let bd = ref Breakdown.zero in
  let rec go i =
    if i >= count then Ok ()
    else
      let gi, gb = locate t (block + i) in
      let piece = Bytes.sub buf (i * t.block_bytes) t.block_bytes in
      match group_write t gi gb piece with
      | Ok cost ->
        bd := Breakdown.add !bd cost;
        go (i + 1)
      | Error e -> Error { e with Blockdev.Device.block = block + i }
  in
  match go 0 with
  | Ok () ->
    Trace.exit t.trace ~bd:!bd sp;
    Ok (Io.make ~span:sp !bd)
  | Error e ->
    Trace.exit t.trace ~bd:!bd sp;
    Error e

let trim t block =
  check t block 1;
  let gi, gb = locate t block in
  group_trim t gi gb

let idle t dt =
  if dt > 0. then begin
    let deadline = Clock.now t.clock +. dt in
    rebuild_pump t ~deadline;
    iter_legs t (fun _ leg ->
        match (leg.state, leg.impl) with
        | (`Healthy | `Suspect), Vld v ->
          if Clock.now t.clock < deadline then
            ignore (Vlog.Compactor.run (Blockdev.Vld.compactor v) ~deadline)
        | _ -> ())
  end

let utilization t =
  let sum = ref 0. and n = ref 0 in
  iter_legs t (fun _ leg ->
      if leg.state <> `Dead then begin
        sum := !sum +. leg_utilization leg;
        incr n
      end);
  if !n = 0 then 1. else !sum /. float_of_int !n

let device t =
  let submit, poll, drain =
    Blockdev.Device.sync_queue ~read:(read_result t)
      ~read_run:(read_run_result t) ~write:(write_result t)
      ~write_run:(write_run_result t)
  in
  {
    Blockdev.Device.name = "volume:" ^ layout_to_string t.layout;
    block_bytes = t.block_bytes;
    n_blocks = t.logical_blocks;
    trace = t.trace;
    read = read_result t;
    read_run = read_run_result t;
    write = write_result t;
    write_run = write_run_result t;
    submit;
    poll;
    drain;
    trim = trim t;
    idle = idle t;
    utilization = (fun () -> utilization t);
  }

(* ---- Introspection (CLI, checkers, tests) ---- *)

let layout t = t.layout
let policy t = t.policy
let n_groups t = Array.length t.groups
let legs_per_group t = Array.length t.groups.(0)
let group_blocks t = t.group_blocks
let logical_blocks t = t.logical_blocks
let block_bytes t = t.block_bytes
let clock t = t.clock

let disks t =
  Array.concat (Array.to_list (Array.map (Array.map (fun leg -> leg.disk)) t.groups))

let state_of t ~group ~leg =
  let l = t.groups.(group).(leg) in
  match l.state with
  | `Healthy -> `Healthy
  | `Suspect -> `Suspect
  | `Dead -> `Dead
  | `Rebuilding -> `Rebuilding l.cursor

let state_to_string = function
  | `Healthy -> "healthy"
  | `Suspect -> "suspect"
  | `Dead -> "dead"
  | `Rebuilding c -> Printf.sprintf "rebuilding@%d" c

let drl_size t =
  let n = ref 0 in
  iter_legs t (fun _ leg -> n := !n + Hashtbl.length leg.drl);
  !n

let degraded t =
  let d = ref false in
  iter_legs t (fun _ leg -> if leg.state <> `Healthy then d := true);
  !d

let kill t ~group ~leg =
  let l = t.groups.(group).(leg) in
  if l.state <> `Dead then begin
    l.state <- `Dead;
    Trace.incr t.trace "vol.leg_deaths"
  end

let start_rebuild t ~group ~leg =
  let l = t.groups.(group).(leg) in
  if l.state <> `Dead then Error "leg is not dead"
  else
    match t.spare with
    | None -> Error "no hot spare configured"
    | Some factory ->
      start_rebuild_on t l (factory ());
      Ok ()

let leg_read_raw t ~group ~leg gb = Result.map fst (leg_read t.groups.(group).(leg) gb)
let leg_drl_size t ~group ~leg = Hashtbl.length t.groups.(group).(leg).drl
let leg_dirty t ~group ~leg gb = Hashtbl.mem t.groups.(group).(leg).drl gb

let group_has_data t ~group gb =
  Array.exists
    (fun leg ->
      leg.state <> `Dead && ((not (leg_skip_unmapped leg)) || leg_mapped leg gb))
    t.groups.(group)

let pp_status ppf t =
  let k = n_groups t and m = legs_per_group t in
  Format.fprintf ppf "layout %s, %d logical blocks, %d per group@\n"
    (layout_to_string t.layout) t.logical_blocks t.group_blocks;
  for gi = 0 to k - 1 do
    for li = 0 to m - 1 do
      let l = t.groups.(gi).(li) in
      Format.fprintf ppf "  group %d leg %d: %-14s drl=%d util=%.2f@\n" gi li
        (state_to_string (state_of t ~group:gi ~leg:li))
        (Hashtbl.length l.drl) (leg_utilization l)
    done
  done;
  Format.fprintf ppf "  volume: %s@\n"
    (if degraded t then "DEGRADED" else "healthy")
