(* Multi-disk volume manager: N simulated spindles behind the one
   [Device.t] record the file systems already run on.

   A volume is k stripe groups of m mirror legs each ([Stripe] is k x 1,
   [Mirror] is 1 x m, [Stripe_of_mirrors] is k x m).  Logical block [b]
   lives at group [b mod k], group-block [b / k]; each leg is a complete
   logical disk of its own — a [Regular_disk] or a [Vld], so eager
   writing composes per-spindle, every leg keeping its own head-local
   free pool.

   Robustness model:
   - reads fail over across mirror legs; writes that cannot reach a leg
     record the block in that leg's dirty-region log (DRL) and succeed as
     long as one leg took the data;
   - a failing leg goes [Suspect] and is left alone for a backoff window;
     a later access probes it — success drains its DRL from a peer and
     revives it, [probes_to_kill] consecutive failures retire it;
   - a per-operation time budget bounds how long a hung leg can stall
     the volume: once one leg has the data, legs that would push the
     operation past [timeout_ms] are skipped (and DRL'd) instead;
   - a retired leg is resilvered onto a hot-spare drive in the background
     ([Rebuilding] cursor sweep + DRL for writes landing behind it) while
     foreground I/O continues;
   - [recover] brings every leg back from its platters and then resyncs
     mirror groups: writes go to legs in index order, so the lowest live
     leg is always newest and the group converges to its content.

   Data path: each leg owns a tagged command queue ([Disk.Disk_queue],
   SATF by default for VLD legs) and a local timeline cursor
   [busy_until].  A volume operation scatters commands to its legs at an
   arrival instant and services each leg inside its own time window —
   the shared clock is warped to [max at busy_until], the leg's queue
   drains, and the finish becomes the leg's new [busy_until].  Windows
   of different legs overlap in simulated time (spindles are
   independent), so a mirror write completes at the slowest leg's ack
   (max, not sum) and a stripe fans reads and writes across spindles
   concurrently.  Rebuild copies ride the same queues as low-priority
   background tags, throttled to [rebuild_util] of a spindle's time.
   Admin paths (probe, resync, settle) stay sequential on the shared
   clock. *)

open Vlog_util

type layout =
  | Stripe of int
  | Mirror of int
  | Stripe_of_mirrors of int * int

type leg_kind = Regular_leg | Vld_leg

type policy = {
  timeout_ms : float;  (** per-operation budget once one leg has the data *)
  backoff_ms : float;  (** how long a [Suspect] leg is left alone *)
  probes_to_kill : int;  (** consecutive probe failures that retire a leg *)
  rebuild_util : float;
      (** fraction of a spindle's time background rebuild may hold
          (duty cycle); 1.0 = unthrottled *)
}

let default_policy =
  { timeout_ms = 50.; backoff_ms = 200.; probes_to_kill = 2; rebuild_util = 0.5 }

let layout_shape = function
  | Stripe k ->
    if k < 1 then invalid_arg "Volume: stripe needs at least 1 leg";
    (k, 1)
  | Mirror m ->
    if m < 2 then invalid_arg "Volume: mirror needs at least 2 legs";
    (1, m)
  | Stripe_of_mirrors (k, m) ->
    if k < 1 || m < 2 then
      invalid_arg "Volume: stripe of mirrors needs k >= 1 groups of m >= 2 legs";
    (k, m)

let n_legs layout =
  let k, m = layout_shape layout in
  k * m

let layout_to_string = function
  | Stripe k -> Printf.sprintf "stripe:%d" k
  | Mirror m -> Printf.sprintf "mirror:%d" m
  | Stripe_of_mirrors (k, m) -> Printf.sprintf "raid10:%dx%d" k m

type leg_impl = Vld of Blockdev.Vld.t | Reg of Blockdev.Regular_disk.t

type leg = {
  uid : int;  (* process-unique; keys per-batch completion tables *)
  mutable impl : leg_impl;
  mutable disk : Disk.Disk_sim.t;
  mutable q : Disk.Disk_queue.t;  (* the leg's tagged command queue *)
  mutable busy_until : float;  (* local timeline: end of the last window *)
  mutable gen : int;  (* bumped when the leg is killed or swapped *)
  mutable state : [ `Healthy | `Suspect | `Dead | `Rebuilding ];
  mutable cursor : int; (* rebuild sweep position, meaningful while `Rebuilding *)
  mutable copy_cost : float;
  (* last observed full cost of one background rebuild copy (service +
     throttle idle); the pump's estimate for not overrunning a window *)
  drl : (int, unit) Hashtbl.t; (* group-blocks this leg does not have yet *)
  mutable failed_probes : int;
  mutable retry_after : float; (* Suspect: do not touch before this time *)
}

let leg_uid_counter = ref 0

type host_req = {
  hr_tag : int;
  hr_at : float;
  hr_owner : string option;
  hr_req : Blockdev.Device.req;
}

type t = {
  layout : layout;
  leg_kind : leg_kind;
  policy : policy;
  queue_policy : Disk.Disk_queue.policy;
  logical_blocks : int;
  group_blocks : int;
  block_bytes : int;
  groups : leg array array;
  clock : Clock.t;
  trace : Trace.sink;
  prng : Prng.t;
  mutable spare : (unit -> Disk.Disk_sim.t) option;
  mutable host_next : int;  (* next host-level request tag *)
  mutable host_q : host_req list;  (* pending host requests, reversed *)
  mutable host_done : (int * Blockdev.Device.ack) list;  (* reversed *)
}

let default_queue_policy = function
  | Vld_leg -> Disk.Disk_queue.Satf
  | Regular_leg -> Disk.Disk_queue.Fifo

let leg_spare_blocks = 8

let format_leg ~leg_kind ~group_blocks ~prng disk =
  match leg_kind with
  | Vld_leg ->
    Vld (Blockdev.Vld.create ~disk ~logical_blocks:group_blocks ~prng ())
  | Regular_leg ->
    Reg (Blockdev.Regular_disk.create ~disk ~spare_blocks:leg_spare_blocks ())

let leg_block_bytes leg =
  match leg.impl with
  | Vld v -> Vlog.Virtual_log.block_bytes (Blockdev.Vld.vlog v)
  | Reg r -> (Blockdev.Regular_disk.device r).Blockdev.Device.block_bytes

(* ---- Leg primitives ---- *)

let synth_err op gb = { Blockdev.Device.op; block = gb; error_lba = 0; retries = 0 }

let leg_read leg gb =
  match leg.impl with
  | Vld v -> Blockdev.Vld.read_result v gb
  | Reg r -> Blockdev.Regular_disk.read_result r gb

(* A wedged VLD leg (allocation reserve exhausted, persistent map-write
   failures) raises [Failure]; the volume degrades the leg instead of
   crashing.  [Power_cut] still propagates — power is volume-wide. *)
let leg_write leg gb buf =
  match
    match leg.impl with
    | Vld v -> Blockdev.Vld.write_result v gb buf
    | Reg r -> Blockdev.Regular_disk.write_result r gb buf
  with
  | r -> r
  | exception Failure _ -> Error (synth_err `Write gb)

let leg_trim leg gb =
  match leg.impl with
  | Reg _ -> ()
  | Vld v -> (
    let vl = Blockdev.Vld.vlog v in
    match Vlog.Virtual_log.lookup vl gb with
    | None -> ()
    | Some _ -> (
      try ignore (Vlog.Virtual_log.update vl [ (gb, None) ])
      with Failure _ -> ()))

(* Whether the leg provably holds nothing at [gb].  Only a VLD's answer
   is persistent (the indirection map survives remount); a regular leg's
   written bitmap is volatile, so it must never be used to skip blocks
   after a crash — callers copy everything instead. *)
let leg_skip_unmapped leg =
  match leg.impl with Vld _ -> true | Reg _ -> false

let leg_mapped leg gb =
  match leg.impl with
  | Vld v -> Vlog.Virtual_log.lookup (Blockdev.Vld.vlog v) gb <> None
  | Reg r -> Blockdev.Regular_disk.written r gb

let leg_utilization leg =
  match leg.impl with
  | Vld v -> Vlog.Freemap.utilization (Vlog.Virtual_log.freemap (Blockdev.Vld.vlog v))
  | Reg r -> (Blockdev.Regular_disk.device r).Blockdev.Device.utilization ()

(* A probe must touch the media (a VLD answers unmapped reads from its
   in-memory map), so read one raw sector — lba 0 always exists. *)
let probe_leg t leg =
  Trace.incr t.trace "vol.probes";
  match Disk.Disk_sim.read_checked ~scsi:true leg.disk ~lba:0 ~sectors:1 with
  | Ok _, _ -> true
  | Error _, _ -> false

(* ---- Concurrent leg engine ----

   The shared clock is one timeline, but the spindles are independent:
   to overlap them, every leg keeps [busy_until] — the end of the last
   window in which it serviced commands.  [run_leg] warps the clock to
   [max at busy_until], drains the leg's queue there (the drive
   mechanics advance the clock as usual), and records the finish.  The
   caller gathers completions and warps the clock to the operation's
   completion instant — the latest awaited leg. *)

let run_leg t leg ~at =
  Clock.warp t.clock (Float.max at leg.busy_until);
  let cs = Disk.Disk_queue.drain leg.q in
  leg.busy_until <- Clock.now t.clock;
  cs

(* (leg uid, tag) -> completion, for one scatter/gather batch *)
type ctbl = (int * int, Disk.Disk_queue.completion) Hashtbl.t

let run_legs t legs ~at : ctbl =
  let tbl : ctbl = Hashtbl.create 16 in
  List.iter
    (fun leg ->
      List.iter
        (fun (tag, c) -> Hashtbl.replace tbl (leg.uid, tag) c)
        (run_leg t leg ~at))
    legs;
  tbl

let dedup_legs legs =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun leg ->
      if Hashtbl.mem seen leg.uid then false
      else begin
        Hashtbl.add seen leg.uid ();
        true
      end)
    legs

(* Pure mechanical previews for the leg queue's scheduler (SATF cost,
   elevator cylinder).  A VLD read prices the mapped physical location;
   a VLD write is eager — it lands near the head wherever that is. *)

let leg_spb t leg =
  t.block_bytes / (Disk.Disk_sim.geometry leg.disk).Disk.Geometry.sector_bytes

let read_lba t leg gb =
  let spb = leg_spb t leg in
  match leg.impl with
  | Vld v -> (
    match Vlog.Virtual_log.lookup (Blockdev.Vld.vlog v) gb with
    | Some pba -> Some (pba * spb)
    | None -> None (* unmapped: answered from the in-memory map, no seek *))
  | Reg _ -> Some (gb * spb) (* remaps are rare; near enough to price *)

let read_estimate t leg gb =
  match read_lba t leg gb with
  | None -> 0.
  | Some lba -> Disk.Disk_sim.estimate_access leg.disk ~lba ~sectors:(leg_spb t leg)

let read_cylinder t leg gb =
  match read_lba t leg gb with
  | None -> Disk.Disk_sim.current_cylinder leg.disk
  | Some lba ->
    (Disk.Geometry.addr_of_lba (Disk.Disk_sim.geometry leg.disk) lba)
      .Disk.Geometry.cyl

let write_estimate t leg gb =
  let spb = leg_spb t leg in
  match leg.impl with
  | Vld _ -> 0.
  | Reg _ -> Disk.Disk_sim.estimate_access leg.disk ~lba:(gb * spb) ~sectors:spb

let write_cylinder t leg gb =
  match leg.impl with
  | Vld _ -> Disk.Disk_sim.current_cylinder leg.disk
  | Reg _ ->
    (Disk.Geometry.addr_of_lba
       (Disk.Disk_sim.geometry leg.disk)
       (gb * leg_spb t leg))
      .Disk.Geometry.cyl

(* Classify a leg failure for the queue's in-flight policy: while the
   drive reports itself hanging or flaky the error is transient — the
   queue stalls or retries the tag within its budget — whereas a dead
   drive (or plain media damage) fails the tag at once so the gather can
   fail over.  The health probe is the fault plan's, installed by
   [Fault.Plan.install]; an unprobed disk always reads [Ok_drive]. *)
let media_err leg (e : Blockdev.Device.io_error) =
  let transient =
    match Disk.Disk_sim.health leg.disk with
    | Disk.Disk_sim.Hung _ | Disk.Disk_sim.Flaky_drive -> true
    | Disk.Disk_sim.Ok_drive | Disk.Disk_sim.Dead_drive -> false
  in
  { Disk.Disk_sim.error_lba = e.Blockdev.Device.error_lba; transient }

(* Every leg queue gets the same in-flight failure machinery: the stall
   probe follows the drive's health (one hung tag parks behind the hang
   deadline instead of completing failed), flaky-drive transients retry
   with seeded backoff, and both are capped by the volume's per-op
   budget so no tag outlives [timeout_ms] of stalling. *)
let leg_queue ~vol_policy ~queue_policy ~prng disk =
  Disk.Disk_queue.create ~policy:queue_policy
    ~stall_probe:(fun () ->
      match Disk.Disk_sim.health disk with
      | Disk.Disk_sim.Hung until -> Some until
      | _ -> None)
    ~retry_backoff:(vol_policy.timeout_ms /. 8.)
    ~retry_jitter:prng ~stall_budget_ms:vol_policy.timeout_ms ~disk ()

(* Submit one leg command; the full device-level logic (VLD placement +
   map commit, regular-disk remap) runs as the command's service.  The
   structured io_error is smuggled out through a per-command ref. *)

let submit_leg_write t leg ~at ?owner gb buf =
  let err = ref None in
  let op =
    Disk.Disk_queue.Hosted
      {
        cost = (fun () -> write_estimate t leg gb);
        cylinder = (fun () -> write_cylinder t leg gb);
        service =
          (fun () ->
            match leg_write leg gb buf with
            | Ok c -> (Disk.Disk_queue.Wrote gb, c.Io.breakdown)
            | Error e ->
              err := Some e;
              (Disk.Disk_queue.Failed (media_err leg e), Breakdown.zero));
      }
  in
  (Disk.Disk_queue.submit ~at ?owner leg.q op, err)

let submit_leg_read t leg ~at ?owner gb =
  let err = ref None in
  let op =
    Disk.Disk_queue.Hosted
      {
        cost = (fun () -> read_estimate t leg gb);
        cylinder = (fun () -> read_cylinder t leg gb);
        service =
          (fun () ->
            match leg_read leg gb with
            | Ok (data, c) -> (Disk.Disk_queue.Data data, c.Io.breakdown)
            | Error e ->
              err := Some e;
              (Disk.Disk_queue.Failed (media_err leg e), Breakdown.zero));
      }
  in
  (Disk.Disk_queue.submit ~at ?owner leg.q op, err)

(* ---- Failure handling, revival, rebuild ---- *)

let start_rebuild_on t leg disk =
  leg.disk <- disk;
  leg.impl <-
    format_leg ~leg_kind:t.leg_kind ~group_blocks:t.group_blocks
      ~prng:(Prng.split t.prng) disk;
  (* the replacement spindle gets a fresh queue and starts its timeline
     now; in-flight commands against the old drive are orphaned (their
     generation no longer matches) *)
  leg.q <-
    leg_queue ~vol_policy:t.policy ~queue_policy:t.queue_policy
      ~prng:(Prng.split t.prng) disk;
  leg.busy_until <- Clock.now t.clock;
  leg.gen <- leg.gen + 1;
  Hashtbl.reset leg.drl;
  leg.cursor <- 0;
  leg.copy_cost <- 0.;
  leg.failed_probes <- 0;
  leg.state <- `Rebuilding;
  Trace.incr t.trace "vol.rebuilds_started"

let group_of t leg =
  let found = ref t.groups.(0) in
  Array.iter
    (fun group -> if Array.exists (fun l -> l == leg) group then found := group)
    t.groups;
  !found

(* A retired resilver target must not survive a crash looking like a
   replica: its platters hold a half-built copy with no on-media record
   of which blocks are missing, so per-leg recovery would bring it up
   healthy — and a resync that picks it as primary would overwrite the
   real survivor with the husk's holes.  Real arrays invalidate the
   evicted member's superblock; the simulated equivalent is decaying the
   media so every later read of it fails ECC. *)
let evict_leg t leg =
  let store = Disk.Disk_sim.store leg.disk in
  let g = Disk.Sector_store.geometry store in
  Disk.Sector_store.rot store ~lba:0
    ~sectors:(Disk.Geometry.total_sectors g)
    t.prng;
  Trace.incr t.trace "vol.legs_evicted"

let kill_leg t leg =
  let was_rebuilding = leg.state = `Rebuilding in
  leg.state <- `Dead;
  leg.gen <- leg.gen + 1;
  Trace.incr t.trace "vol.leg_deaths";
  if was_rebuilding then evict_leg t leg;
  (* a spare can only help while some other leg of the group still holds
     a full copy to resilver from: a peer that is itself mid-resilver
     cannot seed one, and when this death leaves no complete peer,
     pulling a spare would park it in [`Rebuilding] forever *)
  let peers_alive =
    Array.exists
      (fun l -> l != leg && (l.state = `Healthy || l.state = `Suspect))
      (group_of t leg)
  in
  match t.spare with
  | None -> ()
  | Some factory ->
    if peers_alive then start_rebuild_on t leg (factory ())
    else Trace.incr t.trace "vol.rebuild_abandoned"

let note_failure t leg =
  let drive_dead () =
    Disk.Disk_sim.health leg.disk = Disk.Disk_sim.Dead_drive
  in
  match leg.state with
  | `Dead -> ()
  | `Healthy ->
    (* the drive telling us it is gone for good skips probation: every
       probe would fail anyway, and in-flight commands against it have
       already been aborted with structured errors *)
    if drive_dead () then kill_leg t leg
    else begin
      leg.state <- `Suspect;
      leg.failed_probes <- 1;
      leg.retry_after <- Clock.now t.clock +. t.policy.backoff_ms
    end
  | `Suspect ->
    if drive_dead () then kill_leg t leg
    else begin
      leg.failed_probes <- leg.failed_probes + 1;
      leg.retry_after <- Clock.now t.clock +. t.policy.backoff_ms;
      if leg.failed_probes > t.policy.probes_to_kill then kill_leg t leg
    end
  | `Rebuilding ->
    (* the replacement itself is failing: retire it and pull another spare *)
    kill_leg t leg

(* Copy one group-block onto [to_] from the best surviving peer.  A
   mapped source block's bytes are written; a provable source hole is
   propagated as a trim, so a fresh VLD leg is not flooded with zeroes. *)
let copy_block t group ~to_ ~counter gb =
  let src =
    Array.fold_left
      (fun acc leg ->
        match acc with
        | Some _ -> acc
        | None ->
          if leg != to_ && leg.state = `Healthy && not (Hashtbl.mem leg.drl gb)
          then Some leg
          else None)
      None group
  in
  match src with
  | None -> Error `No_source
  | Some src ->
    if leg_skip_unmapped src && not (leg_mapped src gb) then begin
      leg_trim to_ gb;
      Ok ()
    end
    else (
      let write_out data =
        match leg_write to_ gb data with
        | Ok _ ->
          Trace.incr t.trace counter;
          Ok ()
        | Error _ -> Error `Write_failed
      in
      match leg_read src gb with
      | Error _ -> (
        (* only a source that is genuinely gone loses the block: a hung
           or flaky source parks the copy for a later attempt, and a
           dead drive is retired now so the next attempt reconsiders
           its sources *)
        match Disk.Disk_sim.health src.disk with
        | Disk.Disk_sim.Dead_drive ->
          kill_leg t src;
          Error `Unreadable
        | Disk.Disk_sim.Hung _ | Disk.Disk_sim.Flaky_drive -> Error `Source_busy
        | Disk.Disk_sim.Ok_drive -> (
          (* the failure may be the tail of a hang/flaky window that
             closed while the command was in flight — the drive claims
             to be fine NOW, so one immediate retry separates that
             boundary race from a genuinely unreadable block *)
          match leg_read src gb with
          | Ok (data, _) -> write_out data
          | Error _ -> Error `Unreadable))
      | Ok (data, _) -> write_out data)

let drain_drl t group leg =
  let gbs = List.sort compare (Hashtbl.fold (fun gb () acc -> gb :: acc) leg.drl []) in
  List.iter
    (fun gb ->
      match copy_block t group ~to_:leg ~counter:"vol.resync_copies" gb with
      | Ok () -> Hashtbl.remove leg.drl gb
      | Error _ -> () (* stays dirty; reads keep avoiding it *))
    gbs

(* A leg may only return to [`Healthy] with an empty DRL: a healthy leg
   is trusted as a resync primary after a crash (the DRL itself is
   volatile), so reviving one that still holds stale blocks could
   resurrect old data.  If the drain cannot finish — the peer flaking,
   say — the leg stays suspect and retries after another backoff. *)
let revive t group leg =
  drain_drl t group leg;
  if Hashtbl.length leg.drl = 0 then begin
    leg.failed_probes <- 0;
    leg.state <- `Healthy;
    Trace.incr t.trace "vol.revives"
  end
  else leg.retry_after <- Clock.now t.clock +. t.policy.backoff_ms

(* A copy attempt that could not run: distinguish "the resilver target
   itself died mid-copy" — retire it now (a fresh spare is pulled when a
   source survives) — from "no usable source right now" (hung peer,
   flaky burst), which parks the copy for a later window. *)
let rebuild_blocked t leg =
  if Disk.Disk_sim.health leg.disk = Disk.Disk_sim.Dead_drive then begin
    kill_leg t leg;
    `Progress (* the state changed; the caller re-evaluates the leg *)
  end
  else `Blocked

(* One unit of rebuild work: advance the cursor sweep, then drain the
   DRL, then flip the leg healthy.  [copy] performs one block copy —
   either synchronously on the shared clock (admin paths) or as a
   queued background tag in the leg's own window (the online pump). *)
let rebuild_tick_with t leg ~copy =
  if leg.cursor < t.group_blocks then begin
    let gb = leg.cursor in
    match copy gb with
    | `Copied ->
      leg.cursor <- leg.cursor + 1;
      `Progress
    | `Unreadable ->
      (* no surviving copy of this block right now.  The target must
         not pass for a full replica: park the block in its DRL (reads
         keep avoiding the target and fail over to whatever the source
         honestly says) and keep sweeping — a later foreground write or
         a healed source repairs it, and a resilver whose DRL never
         drains is abandoned by the caller's bound rather than
         completed with fabricated content *)
      Trace.incr t.trace "vol.rebuild_lost";
      Hashtbl.replace leg.drl gb ();
      leg.cursor <- leg.cursor + 1;
      `Progress
    | `Blocked -> rebuild_blocked t leg
  end
  else
    match Hashtbl.fold (fun gb () _ -> Some gb) leg.drl None with
    | None ->
      leg.state <- `Healthy;
      leg.failed_probes <- 0;
      Trace.incr t.trace "vol.rebuilds_completed";
      `Done
    | Some gb -> (
      match copy gb with
      | `Copied ->
        Hashtbl.remove leg.drl gb;
        `Progress
      | `Unreadable | `Blocked ->
        (* still no copy to be had: the rebuild cannot finish honestly.
           Parking here (instead of dropping the entry) leaves the
           decision to the caller's progress bound — a source that
           comes back drains it, one that never does retires the leg *)
        rebuild_blocked t leg)

let sync_copy t group ~to_ gb =
  match copy_block t group ~to_ ~counter:"vol.rebuild_copies" gb with
  | Ok () -> `Copied
  | Error `Unreadable -> `Unreadable
  | Error (`No_source | `Write_failed | `Source_busy) -> `Blocked

(* Blocking (foreground) rebuild unit — the admin path. *)
let rebuild_tick t group leg =
  rebuild_tick_with t leg ~copy:(sync_copy t group ~to_:leg)

(* One copy as a low-priority background tag on the target leg,
   serviced in the leg's own window starting at [at].  The source read
   runs inside that window too (a copy occupies both spindles; we
   charge the target — the throttled one).  The [rebuild_util] duty
   cycle is enforced by {!rebuild_pump}'s per-window budget, not here:
   a foreground arrival must never wait through synthetic throttle
   idle, only through real copy service. *)
let queued_copy t group ~to_ ~at gb =
  let res = ref `Blocked in
  let op =
    Disk.Disk_queue.Hosted
      {
        cost = (fun () -> 0.);
        cylinder = (fun () -> Disk.Disk_sim.current_cylinder to_.disk);
        service =
          (fun () ->
            (match copy_block t group ~to_ ~counter:"vol.rebuild_copies" gb with
            | Ok () -> res := `Copied
            | Error `Unreadable -> res := `Unreadable
            | Error (`No_source | `Write_failed | `Source_busy) -> res := `Blocked);
            ( (match !res with
              | `Blocked ->
                Disk.Disk_queue.Failed { Disk.Disk_sim.error_lba = 0; transient = false }
              | `Copied | `Unreadable -> Disk.Disk_queue.Wrote gb),
              Breakdown.zero ));
      }
  in
  ignore (Disk.Disk_queue.submit ~at ~background:true to_.q op);
  ignore (run_leg t to_ ~at);
  !res

let iter_legs t f = Array.iter (fun group -> Array.iter (f group) group) t.groups

let rebuild_active t =
  let any = ref false in
  iter_legs t (fun _ leg -> if leg.state = `Rebuilding then any := true);
  !any

(* Background resilvering during granted idle time: queued copies in
   each rebuilding leg's own window, [from] to [deadline], leaving the
   rest for the next window.  [rebuild_util] is a per-window duty
   cycle: copies may consume at most that fraction of the granted
   window.  A copy is started only when the leg's last observed copy
   cost fits both the duty budget and the deadline, so a foreground
   arrival at the deadline does not queue behind an overrunning
   background copy (a fresh resilver has no estimate yet and may
   overrun once).  A window skipped on the estimate halves it: one
   pathologically slow copy (cold cache, full-stroke seek) must not
   freeze the resilver when later cursor-sequential copies would be
   cheap — the decayed estimate retries within a few windows and the
   next real copy re-prices it. *)
let rebuild_pump t ~from ~deadline =
  let u = Float.min 1. (Float.max 0. t.policy.rebuild_util) in
  if u > 0. then
    iter_legs t (fun group leg ->
        (* clamp to the clock as well as the window: an earlier leg's
           copies advance the shared clock, and a copy may retire a
           source and pull a fresh spare whose timeline starts behind
           "now" — a queued copy must never arrive in the past *)
        let floor_at () =
          Float.max (Clock.now t.clock) (Float.max from leg.busy_until)
        in
        let start = floor_at () in
        let allow = (deadline -. start) *. u in
        let used = ref 0. in
        let copied = ref false in
        let continue_ = ref true in
        while !continue_ && leg.state = `Rebuilding do
          let at = floor_at () in
          if at +. leg.copy_cost >= deadline || !used +. leg.copy_cost > allow
          then continue_ := false
          else
            match
              rebuild_tick_with t leg ~copy:(fun gb ->
                  let r = queued_copy t group ~to_:leg ~at gb in
                  let cost = Float.max 0. (leg.busy_until -. at) in
                  used := !used +. cost;
                  leg.copy_cost <- cost;
                  copied := true;
                  r)
            with
            | `Progress -> ()
            | `Done | `Blocked -> continue_ := false
        done;
        if (not !copied) && leg.state = `Rebuilding && start < deadline then
          leg.copy_cost <- leg.copy_cost /. 2.)

(* Run up to [copies] blocking rebuild copies right now on the shared
   clock — the old-style cursor sweep, foreground I/O stalls behind it.
   Kept as the unthrottled comparison point for the array bench.  The
   sweep occupies the whole group (source reads + target writes), so
   every leg's window is pushed to the end of the sweep: foreground
   arrivals during it queue behind it. *)
let rebuild_step t ~copies =
  let left = ref copies in
  iter_legs t (fun group leg ->
      let continue_ = ref true in
      let swept = ref false in
      while !continue_ && leg.state = `Rebuilding && !left > 0 do
        swept := true;
        match rebuild_tick t group leg with
        | `Progress -> decr left
        | `Done -> ()
        | `Blocked -> continue_ := false
      done;
      if !swept then
        Array.iter
          (fun l -> l.busy_until <- Float.max l.busy_until (Clock.now t.clock))
          group)

let probe_suspects t =
  iter_legs t (fun group leg ->
      if leg.state = `Suspect && Clock.now t.clock >= leg.retry_after then
        if probe_leg t leg then revive t group leg else note_failure t leg)

let rebuild_to_completion t =
  let blocked = ref 0 in
  let rec go () =
    let progress = ref false and any = ref false in
    iter_legs t (fun group leg ->
        if leg.state = `Rebuilding then begin
          any := true;
          match rebuild_tick t group leg with
          | `Progress | `Done -> progress := true
          | `Blocked -> ()
        end);
    if !any then
      if !progress then begin
        blocked := 0;
        go ()
      end
      else if !blocked < 64 then begin
        (* no usable source right now: give hung peers a backoff window
           to come back, then retry *)
        incr blocked;
        Clock.advance t.clock t.policy.backoff_ms;
        probe_suspects t;
        go ()
      end
      else
        (* 64 backoff windows without a usable source anywhere: the data
           these resilver targets still need is not coming back.  Retire
           them honestly — a leg parked in [`Rebuilding] forever would
           survive a crash as a trusted-looking husk. *)
        iter_legs t (fun _ leg ->
            if leg.state = `Rebuilding then begin
              leg.state <- `Dead;
              leg.gen <- leg.gen + 1;
              Trace.incr t.trace "vol.leg_deaths";
              Trace.incr t.trace "vol.rebuild_abandoned";
              evict_leg t leg
            end)
  in
  go ()

(* Deterministic quiescence for harnesses: probe every suspect until it
   revives or dies (advancing simulated time through the backoff
   windows), run rebuilds to completion, and drain every DRL.  On
   return each leg is either fully healthy with an empty DRL, or dead
   (no spare available) — never a trusted leg holding stale blocks.  A
   leg that refuses to settle within the round bound is retired: it
   cannot be allowed to survive a crash as a resync primary. *)
let settle t =
  let unsettled () =
    let any = ref false in
    iter_legs t (fun _ leg ->
        match leg.state with
        | `Suspect | `Rebuilding -> any := true
        | `Healthy -> if Hashtbl.length leg.drl > 0 then any := true
        | `Dead -> ());
    !any
  in
  let rec go n =
    probe_suspects t;
    rebuild_to_completion t;
    iter_legs t (fun group leg ->
        if leg.state = `Healthy && Hashtbl.length leg.drl > 0 then
          drain_drl t group leg);
    if unsettled () then
      if n > 0 then begin
        Clock.advance t.clock t.policy.backoff_ms;
        go (n - 1)
      end
      else begin
        iter_legs t (fun _ leg ->
            if
              leg.state = `Suspect
              || (leg.state = `Healthy && Hashtbl.length leg.drl > 0)
            then kill_leg t leg);
        rebuild_to_completion t
      end
  in
  go (4 * (t.policy.probes_to_kill + 2))

(* ---- Group operations ---- *)

let locate t b =
  let k = Array.length t.groups in
  (b mod k, b / k)

(* One submitted leg command within a scatter. *)
type sub = {
  s_leg : leg;
  s_gen : int;  (* leg generation at submit; a swap orphans the sub *)
  s_suspect : bool;  (* leg was [`Suspect] at dispatch *)
  s_tag : int;
  s_err : Blockdev.Device.io_error option ref;
}

(* The write scatter of one group block. *)
type wtx = {
  wt_block : int;  (* logical block, for error reporting *)
  wt_gi : int;
  wt_gb : int;
  wt_subs : sub list;
  wt_degraded : bool;  (* some leg was skipped (and DRL'd) at dispatch *)
}

(* Mirror write scatter: every leg that can reasonably take the block
   gets a command at the arrival instant; legs skipped for backoff get
   the block in their DRL.  Nothing is serviced yet. *)
let submit_group_write t ~at ?owner gi gb ~block buf =
  let group = t.groups.(gi) in
  let subs = ref [] in
  let degraded = ref false in
  Array.iter
    (fun leg ->
      let dispatch suspect =
        let tag, err = submit_leg_write t leg ~at ?owner gb buf in
        subs :=
          { s_leg = leg; s_gen = leg.gen; s_suspect = suspect; s_tag = tag; s_err = err }
          :: !subs
      in
      match leg.state with
      | `Dead -> ()
      | `Rebuilding ->
        (* the cursor sweep will copy everything at or past it from a
           peer; only the already-rebuilt region must be kept current *)
        if gb < leg.cursor then dispatch false
      | `Healthy -> dispatch false
      | `Suspect ->
        if at < leg.retry_after then begin
          (* in backoff: leave it alone, log the miss.  A DRL entry
             means "a peer holds newer data than this leg"; with no
             peer (single-leg group) the op will simply fail and the
             old block stays valid — marking it dirty would wrongly
             block reads of content the platter still has. *)
          if Array.length group > 1 then Hashtbl.replace leg.drl gb ();
          degraded := true
        end
        else dispatch true)
    group;
  {
    wt_block = block;
    wt_gi = gi;
    wt_gb = gb;
    wt_subs = List.rev !subs;
    wt_degraded = !degraded;
  }

(* Gather one write scatter.  Completion rule: healthy legs are always
   awaited; a suspect whose service ran past the per-op budget is not
   awaited once the data is safe on an awaited leg — its write still
   lands (or fails into the DRL) on its own timeline, but it no longer
   stalls the operation.  Returns the result and the completion
   instant; leaves the clock parked there. *)
let gather_group_write t (ctbl : ctbl) ~at wtx =
  let find s = Hashtbl.find ctbl (s.s_leg.uid, s.s_tag) in
  let ok s =
    match (find s).Disk.Disk_queue.outcome with
    | Disk.Disk_queue.Wrote _ -> true
    | _ -> false
  in
  let in_budget s =
    (not s.s_suspect)
    || (find s).Disk.Disk_queue.finished -. at <= t.policy.timeout_ms
  in
  let safe = List.exists (fun s -> in_budget s && ok s) wtx.wt_subs in
  let awaited s = (not safe) || in_budget s in
  let completion =
    List.fold_left
      (fun acc s ->
        if awaited s then Float.max acc (find s).Disk.Disk_queue.finished else acc)
      at wtx.wt_subs
  in
  Clock.warp t.clock completion;
  let bd = ref Breakdown.zero in
  let wrote = ref 0 in
  let degraded = ref wtx.wt_degraded in
  let last_err = ref None in
  List.iter
    (fun s ->
      let leg = s.s_leg in
      if s.s_gen = leg.gen then begin
        let c = find s in
        match c.Disk.Disk_queue.outcome with
        | Disk.Disk_queue.Wrote _ ->
          bd := Breakdown.add !bd c.Disk.Disk_queue.bd;
          Hashtbl.remove leg.drl wtx.wt_gb;
          incr wrote;
          if s.s_suspect && leg.state = `Suspect then begin
            revive t t.groups.(wtx.wt_gi) leg;
            leg.busy_until <- Float.max leg.busy_until (Clock.now t.clock)
          end
        | Disk.Disk_queue.Failed _ | Disk.Disk_queue.Data _ ->
          (match !(s.s_err) with Some e -> last_err := Some e | None -> ());
          (* single-leg group: the write failed outright and the old
             block content is still the logical content — no peer holds
             anything newer to owe this leg (see the scatter path) *)
          if Array.length t.groups.(wtx.wt_gi) > 1 then
            Hashtbl.replace leg.drl wtx.wt_gb ();
          degraded := true;
          (* one escalation per backoff window, matching the cadence of
             the sequential path (a batch is one op per leg) *)
          if not (leg.state = `Suspect && Clock.now t.clock < leg.retry_after)
          then note_failure t leg
      end)
    wtx.wt_subs;
  if !degraded && !wrote > 0 then Trace.incr t.trace "vol.degraded_writes";
  let res =
    if !wrote > 0 then Ok !bd
    else
      Error
        (match !last_err with
        | Some e -> { e with Blockdev.Device.block = wtx.wt_block }
        | None -> synth_err `Write wtx.wt_block)
  in
  (res, completion, !degraded)

(* The read scatter of one group block: the first candidate is
   submitted into the batch; the rest fail over sequentially at gather
   time (failover is the rare path). *)
type rtx = {
  rt_block : int;
  rt_gi : int;
  rt_gb : int;
  rt_first : sub option;
  rt_rest : leg list;
}

(* Candidate order: healthy legs first, then the rebuilt region of a
   rebuilding leg, then suspects past their backoff (the read doubles
   as the probe).  Blocks in a leg's DRL are never read from it. *)
let submit_group_read t ~at ?owner gi gb ~block =
  let group = t.groups.(gi) in
  let eligible leg =
    (not (Hashtbl.mem leg.drl gb))
    &&
    match leg.state with
    | `Healthy -> true
    | `Rebuilding -> gb < leg.cursor
    | `Suspect -> at >= leg.retry_after
    | `Dead -> false
  in
  let tier leg =
    match leg.state with `Healthy -> 0 | `Rebuilding -> 1 | `Suspect -> 2 | `Dead -> 3
  in
  let candidates =
    let all = Array.to_list group in
    let first = List.filter eligible all in
    if first <> [] then first
    else
      (* last resort: suspects still in backoff — better a slow answer
         than none *)
      List.filter
        (fun leg -> leg.state = `Suspect && not (Hashtbl.mem leg.drl gb))
        all
  in
  let candidates =
    List.stable_sort (fun a b -> compare (tier a) (tier b)) candidates
  in
  match candidates with
  | [] -> { rt_block = block; rt_gi = gi; rt_gb = gb; rt_first = None; rt_rest = [] }
  | leg :: rest ->
    let tag, err = submit_leg_read t leg ~at ?owner gb in
    {
      rt_block = block;
      rt_gi = gi;
      rt_gb = gb;
      rt_first =
        Some
          {
            s_leg = leg;
            s_gen = leg.gen;
            s_suspect = leg.state = `Suspect;
            s_tag = tag;
            s_err = err;
          };
      rt_rest = rest;
    }

(* Gather one read scatter, failing over through the remaining
   candidates in their own windows.  Once one candidate has been tried,
   the per-op budget stops further probing of suspects. *)
let gather_group_read t (ctbl : ctbl) ~at ?owner rtx =
  let err_of tried =
    match tried with
    | Some e -> { e with Blockdev.Device.block = rtx.rt_block }
    | None -> synth_err `Read rtx.rt_block
  in
  let book_failure s =
    let leg = s.s_leg in
    if s.s_gen = leg.gen then
      if not (leg.state = `Suspect && Clock.now t.clock < leg.retry_after) then
        note_failure t leg
  in
  (* Read-repair: a leg whose read failed while a later candidate
     supplied the block holds a provably bad (or stale) copy — park the
     block in its DRL so the next drain rewrites it from the good peer.
     Rewriting is what heals latent sectors.  Only a *successful*
     failover parks: when every copy fails there is no known-good peer,
     and DRL'ing all legs would starve [copy_block] of sources. *)
  let repair failed =
    List.iter
      (fun (fl, fgen) ->
        if fgen = fl.gen && fl.state <> `Dead then begin
          Hashtbl.replace fl.drl rtx.rt_gb ();
          Trace.incr t.trace "vol.read_repairs"
        end)
      failed
  in
  let rec attempt tried failed s (c : Disk.Disk_queue.completion) rest =
    Clock.warp t.clock c.Disk.Disk_queue.finished;
    match c.Disk.Disk_queue.outcome with
    | Disk.Disk_queue.Data data ->
      let leg = s.s_leg in
      repair failed;
      if s.s_suspect && s.s_gen = leg.gen && leg.state = `Suspect then begin
        revive t t.groups.(rtx.rt_gi) leg;
        leg.busy_until <- Float.max leg.busy_until (Clock.now t.clock)
      end;
      (Ok (data, c.Disk.Disk_queue.bd), c.Disk.Disk_queue.finished)
    | Disk.Disk_queue.Failed _ | Disk.Disk_queue.Wrote _ ->
      book_failure s;
      let tried =
        match !(s.s_err) with Some e -> Some e | None -> tried
      in
      let failed = (s.s_leg, s.s_gen) :: failed in
      if rest <> [] then Trace.incr t.trace "vol.failovers";
      failover tried failed c.Disk.Disk_queue.finished rest
  and failover tried failed start = function
    | [] -> (Error (err_of tried), start)
    | leg :: rest ->
      if leg.state = `Dead then failover tried failed start rest
      else if leg.state = `Suspect && start -. at > t.policy.timeout_ms then
        (* budget exhausted: no further probing of suspects (healthy
           candidates sort first, so none is being skipped here) *)
        (Error (err_of tried), start)
      else begin
        Clock.warp t.clock start;
        let tag, err = submit_leg_read t leg ~at:start ?owner rtx.rt_gb in
        let s =
          {
            s_leg = leg;
            s_gen = leg.gen;
            s_suspect = leg.state = `Suspect;
            s_tag = tag;
            s_err = err;
          }
        in
        let cs = run_leg t leg ~at:start in
        attempt tried failed s (List.assoc tag cs) rest
      end
  in
  match rtx.rt_first with
  | None -> (Error (err_of None), at)
  | Some s ->
    attempt None [] s (Hashtbl.find ctbl (s.s_leg.uid, s.s_tag)) rtx.rt_rest

(* ---- Scatter/gather execution of host requests ---- *)

(* Structured per-block outcome of one batch window.  A mid-window leg
   fault forces a partial gather: some blocks land (possibly degraded,
   their missed copies DRL'd), others fail outright.  The report names
   exactly which, so a degraded-mode retry re-submits only [*_failed] —
   never a command that already completed. *)

type block_error = { be_block : int; be_error : Blockdev.Device.io_error }

type write_report = {
  wr_written : int list;
  wr_failed : block_error list;
  wr_degraded : bool;
  wr_bd : Breakdown.t;
}

type read_report = {
  rr_data : (int * Bytes.t * Breakdown.t) list;
  rr_failed : block_error list;
}

(* Service the write scatter of one host request: all group blocks'
   commands are submitted at the arrival instant, every involved leg is
   serviced once in its own window (the leg's queue policy reorders
   within the window), and the gathers run in block order.  The
   operation completes at the latest awaited leg across all blocks. *)
let exec_writes_report t ~at ?owner items =
  Clock.warp t.clock at;
  let txs =
    List.map
      (fun (b, buf) ->
        let gi, gb = locate t b in
        submit_group_write t ~at ?owner gi gb ~block:b buf)
      items
  in
  let legs =
    dedup_legs (List.concat_map (fun tx -> List.map (fun s -> s.s_leg) tx.wt_subs) txs)
  in
  let ctbl = run_legs t legs ~at in
  let completion = ref at in
  let written = ref [] and failed = ref [] in
  let degraded = ref false in
  let bd = ref Breakdown.zero in
  List.iter
    (fun tx ->
      let r, fin, deg = gather_group_write t ctbl ~at tx in
      completion := Float.max !completion fin;
      if deg then degraded := true;
      match r with
      | Ok b ->
        bd := Breakdown.add !bd b;
        written := tx.wt_block :: !written
      | Error e -> failed := { be_block = tx.wt_block; be_error = e } :: !failed)
    txs;
  Clock.warp t.clock !completion;
  {
    wr_written = List.rev !written;
    wr_failed = List.rev !failed;
    wr_degraded = !degraded;
    wr_bd = !bd;
  }

let exec_writes t ~at ?owner items =
  let r = exec_writes_report t ~at ?owner items in
  match r.wr_failed with
  | [] -> Ok r.wr_bd
  | f :: _ -> Error f.be_error

(* Read scatter: the first candidate of every block is submitted at the
   arrival instant; failover rounds run per block at gather time. *)
let exec_reads_report t ~at ?owner blocks =
  Clock.warp t.clock at;
  let txs =
    List.map
      (fun b ->
        let gi, gb = locate t b in
        submit_group_read t ~at ?owner gi gb ~block:b)
      blocks
  in
  let legs =
    dedup_legs
      (List.filter_map (fun tx -> Option.map (fun s -> s.s_leg) tx.rt_first) txs)
  in
  let ctbl = run_legs t legs ~at in
  let completion = ref at in
  let data = ref [] and failed = ref [] in
  List.iter
    (fun tx ->
      let r, fin = gather_group_read t ctbl ~at ?owner tx in
      completion := Float.max !completion fin;
      match r with
      | Ok (d, bd) -> data := (tx.rt_block, d, bd) :: !data
      | Error e -> failed := { be_block = tx.rt_block; be_error = e } :: !failed)
    txs;
  Clock.warp t.clock !completion;
  { rr_data = List.rev !data; rr_failed = List.rev !failed }

let exec_reads t ~at ?owner blocks =
  let r = exec_reads_report t ~at ?owner blocks in
  match r.rr_failed with
  | [] -> Ok (List.map (fun (_, d, bd) -> (d, bd)) r.rr_data)
  | f :: _ -> Error f.be_error

let group_trim t gi gb =
  Array.iter
    (fun leg ->
      match leg.state with
      | `Dead -> ()
      | `Rebuilding | `Suspect | `Healthy -> leg_trim leg gb)
    t.groups.(gi)

(* ---- Construction ---- *)

let mk_leg_record ~vol_policy ~queue_policy ~prng ~disk ~impl ~state =
  let uid = !leg_uid_counter in
  incr leg_uid_counter;
  {
    uid;
    impl;
    disk;
    q = leg_queue ~vol_policy ~queue_policy ~prng disk;
    busy_until = Clock.now (Disk.Disk_sim.clock disk);
    gen = 0;
    state;
    cursor = 0;
    copy_cost = 0.;
    drl = Hashtbl.create 8;
    failed_probes = 0;
    retry_after = 0.;
  }

let mk ?(policy = default_policy) ?queue_policy ?spare ~layout ~leg_kind
    ~logical_blocks ~(disks : Disk.Disk_sim.t array) ~prng ~mk_leg () =
  let k, m = layout_shape layout in
  if Array.length disks <> k * m then
    invalid_arg
      (Printf.sprintf "Volume: layout %s needs %d disks, got %d"
         (layout_to_string layout) (k * m) (Array.length disks));
  if logical_blocks < 1 then invalid_arg "Volume: need at least one logical block";
  let queue_policy =
    match queue_policy with Some p -> p | None -> default_queue_policy leg_kind
  in
  let group_blocks = (logical_blocks + k - 1) / k in
  let groups =
    Array.init k (fun gi ->
        Array.init m (fun li ->
            mk_leg ~vol_policy:policy ~queue_policy ~group_blocks
              disks.((gi * m) + li) gi li))
  in
  let t =
    {
      layout;
      leg_kind;
      policy;
      queue_policy;
      logical_blocks;
      group_blocks;
      block_bytes = leg_block_bytes groups.(0).(0);
      groups;
      clock = Disk.Disk_sim.clock disks.(0);
      trace = Disk.Disk_sim.trace disks.(0);
      prng;
      spare;
      host_next = 0;
      host_q = [];
      host_done = [];
    }
  in
  t

let create ?policy ?queue_policy ?spare ~layout ~leg_kind ~logical_blocks ~disks
    ~prng () =
  mk ?policy ?queue_policy ?spare ~layout ~leg_kind ~logical_blocks ~disks ~prng
    ~mk_leg:(fun ~vol_policy ~queue_policy ~group_blocks disk _gi _li ->
      mk_leg_record ~vol_policy ~queue_policy ~prng:(Prng.split prng) ~disk
        ~impl:(format_leg ~leg_kind ~group_blocks ~prng:(Prng.split prng) disk)
        ~state:`Healthy)
    ()

(* ---- Recovery ---- *)

type recovery_report = {
  legs_recovered : int;
  legs_lost : int;  (** legs whose platters did not recover; volume degraded *)
  legs_used_tail : int;  (** VLD legs brought up via the landing-zone tail *)
  resync_fixed : int;  (** group-blocks converged onto the primary's content *)
  resync_lost : int;  (** group-blocks unreadable on every surviving leg *)
}

(* Converge every mirror group onto its lowest live leg: writes are
   issued to legs in index order, so that leg is always the newest
   surviving state, and per-leg recovery already rolled each leg back to
   a self-consistent transaction boundary.  Healing writes also repair
   single-leg media damage from the surviving copy. *)
let resync t report =
  let fixed = ref 0 and lost = ref 0 in
  Array.iter
    (fun group ->
      if Array.length group > 1 then
        for gb = 0 to t.group_blocks - 1 do
          let live =
            Array.to_list group |> List.filter (fun leg -> leg.state = `Healthy)
          in
          let skippable =
            live <> []
            && List.for_all
                 (fun leg -> leg_skip_unmapped leg && not (leg_mapped leg gb))
                 live
          in
          if (not skippable) && List.length live > 1 then begin
            let reads = List.map (fun leg -> (leg, leg_read leg gb)) live in
            match
              List.find_opt (fun (_, r) -> Result.is_ok r) reads
            with
            | None -> incr lost
            | Some (primary, pread) ->
              let pdata = match pread with Ok (d, _) -> d | Error _ -> assert false in
              let phole = leg_skip_unmapped primary && not (leg_mapped primary gb) in
              let mend = ref false in
              List.iter
                (fun (leg, r) ->
                  if leg != primary then
                    let differs =
                      match r with
                      | Error _ -> true
                      | Ok (d, _) -> not (Bytes.equal d pdata)
                    in
                    if differs then begin
                      mend := true;
                      if phole then leg_trim leg gb
                      else
                        match leg_write leg gb pdata with
                        | Ok _ -> Trace.incr t.trace "vol.resync_copies"
                        | Error _ -> Hashtbl.replace leg.drl gb ()
                    end)
                reads;
              if !mend then incr fixed
          end
        done)
    t.groups;
  { report with resync_fixed = !fixed; resync_lost = !lost }

let recover ?policy ?queue_policy ?spare ~layout ~leg_kind ~logical_blocks ~disks
    ~prng () =
  let recovered = ref 0 and lost = ref 0 and used_tail = ref 0 in
  let t =
    mk ?policy ?queue_policy ?spare ~layout ~leg_kind ~logical_blocks ~disks ~prng
      ~mk_leg:(fun ~vol_policy ~queue_policy ~group_blocks:_ disk _gi _li ->
        let impl, state =
          match leg_kind with
          | Regular_leg ->
            (* a regular leg has no volatile metadata to rebuild: wrapping
               the platters is the whole recovery *)
            incr recovered;
            ( Reg
                (Blockdev.Regular_disk.create ~disk
                   ~spare_blocks:leg_spare_blocks ()),
              `Healthy )
          | Vld_leg -> (
            match Blockdev.Vld.recover ~disk ~prng:(Prng.split prng) () with
            | Ok (v, rep) ->
              incr recovered;
              if rep.Vlog.Virtual_log.used_tail then incr used_tail;
              (Vld v, `Healthy)
            | Error _ ->
              (* platters unrecoverable: dead on arrival.  The placeholder
                 impl never runs — `Dead gates every access — and wrapping
                 a regular disk writes nothing to the media. *)
              incr lost;
              (Reg (Blockdev.Regular_disk.create ~disk ()), `Dead))
        in
        mk_leg_record ~vol_policy ~queue_policy ~prng:(Prng.split prng) ~disk
          ~impl ~state)
      ()
  in
  let orphaned = ref [] in
  Array.iteri
    (fun gi group ->
      if not (Array.exists (fun leg -> leg.state <> `Dead) group) then
        orphaned := gi :: !orphaned)
    t.groups;
  match !orphaned with
  | gi :: _ ->
    Error
      (Printf.sprintf
         "data loss: group %d has no surviving leg (every mirror copy is gone)"
         gi)
  | [] ->
    let report =
      {
        legs_recovered = !recovered;
        legs_lost = !lost;
        legs_used_tail = !used_tail;
        resync_fixed = 0;
        resync_lost = 0;
      }
    in
    let report = resync t report in
    (* a dead-on-arrival leg starts rebuilding immediately if a spare is
       on hand *)
    iter_legs t (fun _ leg ->
        if leg.state = `Dead then
          match t.spare with
          | Some factory -> start_rebuild_on t leg (factory ())
          | None -> ());
    Ok (t, report)

(* ---- The Device face ---- *)

let check t block count =
  if block < 0 || count <= 0 || block + count > t.logical_blocks then
    invalid_arg "Volume: logical block range out of bounds"

let dev_span t name block count =
  if Trace.enabled t.trace then
    Trace.enter t.trace
      ~attrs:[ ("block", string_of_int block); ("count", string_of_int count) ]
      name
  else Io.no_span

let read_result_at t ?owner ~at block =
  check t block 1;
  Clock.warp t.clock at;
  let sp = dev_span t "vol.read" block 1 in
  match exec_reads t ~at ?owner [ block ] with
  | Ok [ (data, bd) ] ->
    Trace.exit t.trace ~bd sp;
    Ok (data, Io.make ~span:sp bd)
  | Ok _ -> assert false
  | Error e ->
    Trace.exit t.trace sp;
    Error e

let write_result_at t ?owner ~at block buf =
  check t block 1;
  if Bytes.length buf <> t.block_bytes then
    invalid_arg "Volume.write: buffer must be exactly one block";
  Clock.warp t.clock at;
  let sp = dev_span t "vol.write" block 1 in
  match exec_writes t ~at ?owner [ (block, buf) ] with
  | Ok bd ->
    Trace.exit t.trace ~bd sp;
    Ok (Io.make ~span:sp bd)
  | Error e ->
    Trace.exit t.trace sp;
    Error e

let read_run_result_at t ?owner ~at block count =
  check t block count;
  Clock.warp t.clock at;
  let sp = dev_span t "vol.read_run" block count in
  let blocks = List.init count (fun i -> block + i) in
  match exec_reads t ~at ?owner blocks with
  | Ok pieces ->
    let out = Bytes.create (count * t.block_bytes) in
    let bd = ref Breakdown.zero in
    List.iteri
      (fun i (data, cost) ->
        Bytes.blit data 0 out (i * t.block_bytes) t.block_bytes;
        bd := Breakdown.add !bd cost)
      pieces;
    Trace.exit t.trace ~bd:!bd sp;
    Ok (out, Io.make ~span:sp !bd)
  | Error e ->
    Trace.exit t.trace sp;
    Error e

let write_run_result_at t ?owner ~at block buf =
  if Bytes.length buf = 0 || Bytes.length buf mod t.block_bytes <> 0 then
    invalid_arg "Volume.write_run: buffer must be whole blocks";
  let count = Bytes.length buf / t.block_bytes in
  check t block count;
  Clock.warp t.clock at;
  let sp = dev_span t "vol.write_run" block count in
  let items =
    List.init count (fun i ->
        (block + i, Bytes.sub buf (i * t.block_bytes) t.block_bytes))
  in
  match exec_writes t ~at ?owner items with
  | Ok bd ->
    Trace.exit t.trace ~bd sp;
    Ok (Io.make ~span:sp bd)
  | Error e ->
    Trace.exit t.trace sp;
    Error e

let write_batch t ?owner ~at items =
  Clock.warp t.clock at;
  exec_writes t ~at ?owner items

let read_batch t ?owner ~at blocks =
  Clock.warp t.clock at;
  exec_reads t ~at ?owner blocks

let write_batch_report t ?owner ~at items =
  Clock.warp t.clock at;
  exec_writes_report t ~at ?owner items

let read_batch_report t ?owner ~at blocks =
  Clock.warp t.clock at;
  exec_reads_report t ~at ?owner blocks

let read_result t block = read_result_at t ~at:(Clock.now t.clock) block
let write_result t block buf = write_result_at t ~at:(Clock.now t.clock) block buf

let read_run_result t block count =
  read_run_result_at t ~at:(Clock.now t.clock) block count

let write_run_result t block buf =
  write_run_result_at t ~at:(Clock.now t.clock) block buf

(* ---- Native host queue ----

   Unlike the [sync_queue] host FIFO the volume used to wrap, the
   native front keeps per-request arrival timestamps: requests drain in
   submission order, each starting at its own arrival on whatever legs
   it touches, so requests on disjoint spindles overlap and requests on
   the same spindle pipeline through [busy_until].  Arrivals may lie
   anywhere on the timeline (a closed-loop driver submits the
   replacement op at the completion instant of its predecessor, which
   can precede the clock after a barrier). *)

let submit_req ?at ?owner t req =
  let at = match at with Some a -> a | None -> Clock.now t.clock in
  let tag = t.host_next in
  t.host_next <- tag + 1;
  t.host_q <- { hr_tag = tag; hr_at = at; hr_owner = owner; hr_req = req } :: t.host_q;
  tag

let exec_req t ~at ?owner : Blockdev.Device.req -> Blockdev.Device.ack = function
  | Blockdev.Device.Read b -> (
    match read_result_at t ?owner ~at b with
    | Ok (d, c) -> Ok (Blockdev.Device.Data (d, c))
    | Error e -> Error e)
  | Blockdev.Device.Read_run (b, n) -> (
    match read_run_result_at t ?owner ~at b n with
    | Ok (d, c) -> Ok (Blockdev.Device.Data (d, c))
    | Error e -> Error e)
  | Blockdev.Device.Write (b, buf) -> (
    match write_result_at t ?owner ~at b buf with
    | Ok c -> Ok (Blockdev.Device.Done c)
    | Error e -> Error e)
  | Blockdev.Device.Write_run (b, buf) -> (
    match write_run_result_at t ?owner ~at b buf with
    | Ok c -> Ok (Blockdev.Device.Done c)
    | Error e -> Error e)

let poll_reqs t =
  let acks = List.rev t.host_done in
  t.host_done <- [];
  acks

let drain_reqs t =
  let reqs = List.rev t.host_q in
  t.host_q <- [];
  let end_ = ref (Clock.now t.clock) in
  List.iter
    (fun hr ->
      let ack = exec_req t ~at:hr.hr_at ?owner:hr.hr_owner hr.hr_req in
      end_ := Float.max !end_ (Clock.now t.clock);
      t.host_done <- (hr.hr_tag, ack) :: t.host_done)
    reqs;
  Clock.warp t.clock !end_;
  poll_reqs t

let trim t block =
  check t block 1;
  let gi, gb = locate t block in
  group_trim t gi gb

(* Idle time is granted per spindle: rebuilds pump throttled background
   copies in each rebuilding leg's own window, then each VLD leg's
   compactor runs in its window.  The clock ends at the end of the used
   window, never past the deadline. *)
let idle t dt =
  if dt > 0. then begin
    let from = Clock.now t.clock in
    let deadline = from +. dt in
    rebuild_pump t ~from ~deadline;
    iter_legs t (fun _ leg ->
        match (leg.state, leg.impl) with
        | (`Healthy | `Suspect), Vld v ->
          let at = Float.max from leg.busy_until in
          if at < deadline then begin
            Clock.warp t.clock at;
            ignore (Vlog.Compactor.run (Blockdev.Vld.compactor v) ~deadline);
            leg.busy_until <- Float.max leg.busy_until (Clock.now t.clock)
          end
        | _ -> ());
    let end_ = ref from in
    iter_legs t (fun _ leg ->
        end_ := Float.max !end_ (Float.min leg.busy_until deadline));
    Clock.warp t.clock !end_
  end

let utilization t =
  let sum = ref 0. and n = ref 0 in
  iter_legs t (fun _ leg ->
      if leg.state <> `Dead then begin
        sum := !sum +. leg_utilization leg;
        incr n
      end);
  if !n = 0 then 1. else !sum /. float_of_int !n

let device t =
  {
    Blockdev.Device.name = "volume:" ^ layout_to_string t.layout;
    block_bytes = t.block_bytes;
    n_blocks = t.logical_blocks;
    trace = t.trace;
    read = read_result t;
    read_run = read_run_result t;
    write = write_result t;
    write_run = write_run_result t;
    submit = (fun req -> submit_req t req);
    poll = (fun () -> poll_reqs t);
    drain = (fun () -> drain_reqs t);
    trim = trim t;
    idle = idle t;
    utilization = (fun () -> utilization t);
  }

(* ---- Introspection (CLI, checkers, tests) ---- *)

let layout t = t.layout
let policy t = t.policy
let queue_policy t = t.queue_policy
let leg_busy_until t ~group ~leg = t.groups.(group).(leg).busy_until
let n_groups t = Array.length t.groups
let legs_per_group t = Array.length t.groups.(0)
let group_blocks t = t.group_blocks
let logical_blocks t = t.logical_blocks
let block_bytes t = t.block_bytes
let clock t = t.clock

let disks t =
  Array.concat (Array.to_list (Array.map (Array.map (fun leg -> leg.disk)) t.groups))

let state_of t ~group ~leg =
  let l = t.groups.(group).(leg) in
  match l.state with
  | `Healthy -> `Healthy
  | `Suspect -> `Suspect
  | `Dead -> `Dead
  | `Rebuilding -> `Rebuilding l.cursor

let state_to_string = function
  | `Healthy -> "healthy"
  | `Suspect -> "suspect"
  | `Dead -> "dead"
  | `Rebuilding c -> Printf.sprintf "rebuilding@%d" c

let drl_size t =
  let n = ref 0 in
  iter_legs t (fun _ leg -> n := !n + Hashtbl.length leg.drl);
  !n

let degraded t =
  let d = ref false in
  iter_legs t (fun _ leg -> if leg.state <> `Healthy then d := true);
  !d

let kill t ~group ~leg =
  let l = t.groups.(group).(leg) in
  if l.state <> `Dead then begin
    l.state <- `Dead;
    l.gen <- l.gen + 1;
    Trace.incr t.trace "vol.leg_deaths"
  end

let start_rebuild t ~group ~leg =
  let l = t.groups.(group).(leg) in
  if l.state <> `Dead then Error "leg is not dead"
  else
    match t.spare with
    | None -> Error "no hot spare configured"
    | Some factory ->
      start_rebuild_on t l (factory ());
      Ok ()

let leg_read_raw t ~group ~leg gb = Result.map fst (leg_read t.groups.(group).(leg) gb)
let leg_drl_size t ~group ~leg = Hashtbl.length t.groups.(group).(leg).drl
let leg_dirty t ~group ~leg gb = Hashtbl.mem t.groups.(group).(leg).drl gb

let group_has_data t ~group gb =
  Array.exists
    (fun leg ->
      leg.state <> `Dead && ((not (leg_skip_unmapped leg)) || leg_mapped leg gb))
    t.groups.(group)

let pp_status ppf t =
  let k = n_groups t and m = legs_per_group t in
  Format.fprintf ppf "layout %s, %d logical blocks, %d per group@\n"
    (layout_to_string t.layout) t.logical_blocks t.group_blocks;
  for gi = 0 to k - 1 do
    for li = 0 to m - 1 do
      let l = t.groups.(gi).(li) in
      Format.fprintf ppf "  group %d leg %d: %-14s drl=%d util=%.2f@\n" gi li
        (state_to_string (state_of t ~group:gi ~leg:li))
        (Hashtbl.length l.drl) (leg_utilization l)
    done
  done;
  Format.fprintf ppf "  volume: %s@\n"
    (if degraded t then "DEGRADED" else "healthy")
