type t = int64

let empty = 0xCBF29CE484222325L
let prime = 0x100000001B3L

let add_byte h b =
  Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) prime

(* The bulk path keeps the hash as a (hi, lo) pair of 32-bit values in
   native ints: Int64 arithmetic boxes every intermediate, which on a
   4 KB block means ~12k allocations per digest.  The FNV prime is
   2^40 + 0x1B3, so h * prime mod 2^64 decomposes into native-int
   shifts and one small multiply, every intermediate fitting in 63 bits:

     low 32  = (lo * 0x1B3) mod 2^32
     high 32 = (lo * 0x1B3) / 2^32 + hi * 0x1B3 + lo * 2^8   (mod 2^32)

   (the hi * 2^32 * 2^40 term is congruent to 0 mod 2^64). *)
let mask32 = 0xFFFFFFFF

let add_sub_bytes h buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Checksum.add_sub_bytes";
  let hi = ref (Int64.to_int (Int64.shift_right_logical h 32) land mask32) in
  let lo = ref (Int64.to_int (Int64.logand h 0xFFFFFFFFL)) in
  for i = pos to pos + len - 1 do
    let l = !lo lxor Char.code (Bytes.unsafe_get buf i) in
    let a = l * 0x1B3 in
    hi := ((a lsr 32) + (!hi * 0x1B3) + (l lsl 8)) land mask32;
    lo := a land mask32
  done;
  Int64.logor (Int64.shift_left (Int64.of_int !hi) 32) (Int64.of_int !lo)

let add_bytes h buf = add_sub_bytes h buf ~pos:0 ~len:(Bytes.length buf)

(* FNV-1a consuming the region as little-endian 64-bit words (trailing
   bytes one at a time): the same prime and update rule, but one step
   per word, so a block digest costs 1/8th of the byte walk.  Values
   differ from [add_sub_bytes] over the same region — the two are
   distinct checksums.  Detection is no weaker for the block use case:
   each step h -> (h xor w) * prime is a bijection of the accumulator
   for fixed input, so any single corrupted word changes the final
   value deterministically, and multi-word corruption survives only by
   the same 2^-64 accident as under the byte walk. *)
let add_words h buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Checksum.add_words";
  let hi = ref (Int64.to_int (Int64.shift_right_logical h 32) land mask32) in
  let lo = ref (Int64.to_int (Int64.logand h 0xFFFFFFFFL)) in
  let n_words = len / 8 in
  for w = 0 to n_words - 1 do
    let o = pos + (w * 8) in
    let wlo =
      Bytes.get_uint16_le buf o lor (Bytes.get_uint16_le buf (o + 2) lsl 16)
    in
    let whi =
      Bytes.get_uint16_le buf (o + 4) lor (Bytes.get_uint16_le buf (o + 6) lsl 16)
    in
    let l = !lo lxor wlo in
    let h' = !hi lxor whi in
    let a = l * 0x1B3 in
    hi := ((a lsr 32) + (h' * 0x1B3) + (l lsl 8)) land mask32;
    lo := a land mask32
  done;
  for i = pos + (n_words * 8) to pos + len - 1 do
    let l = !lo lxor Char.code (Bytes.unsafe_get buf i) in
    let a = l * 0x1B3 in
    hi := ((a lsr 32) + (!hi * 0x1B3) + (l lsl 8)) land mask32;
    lo := a land mask32
  done;
  Int64.logor (Int64.shift_left (Int64.of_int !hi) 32) (Int64.of_int !lo)

let add_string h s =
  let h = ref h in
  String.iter (fun c -> h := add_byte !h (Char.code c)) s;
  !h

let add_int h x =
  let h = ref h in
  for shift = 0 to 7 do
    h := add_byte !h ((x lsr (shift * 8)) land 0xff)
  done;
  !h

let add_int64 h x =
  let h = ref h in
  for shift = 0 to 7 do
    h := add_byte !h (Int64.to_int (Int64.shift_right_logical x (shift * 8)))
  done;
  !h

let bytes buf = add_bytes empty buf
let string s = add_string empty s
let to_hex t = Printf.sprintf "%016Lx" t
