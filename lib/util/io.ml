(* The unified I/O completion: what every device operation returns.

   The breakdown is the paper's Figure-9 attribution; the span is the
   trace span covering the operation (-1 when tracing is off — the span
   id is a bare int so this module needs no dependency on the trace
   library); counters are op-specific deltas (retries, remaps,
   reallocations) the device chose to report for this one request. *)

type completion = {
  breakdown : Breakdown.t;
  span : int;
  counters : (string * int) list;
}

let no_span = -1

let make ?(span = no_span) ?(counters = []) breakdown =
  { breakdown; span; counters }

let bd c = c.breakdown

let counter c name =
  match List.assoc_opt name c.counters with Some n -> n | None -> 0

let pp ppf c =
  Breakdown.pp ppf c.breakdown;
  List.iter (fun (k, v) -> Format.fprintf ppf " %s=%d" k v) c.counters
