(** Shared command-line flag vocabulary.

    Every entry point ([bench/main.exe], [bin/vlsim.exe]) accepts the
    same spellings for the cross-cutting flags: [--jobs]/[-j], [--json],
    [--seed].  The specs here are plain data so both parsing styles
    derive from one definition — the hand-rolled argv scanners use
    {!extract}/{!extract_int}, and cmdliner-based commands build their
    [Arg.info] from {!spec.names}/{!spec.docv} (overriding [doc] with
    command-specific text where useful). *)

type spec = {
  names : string list;  (** long name first; one-letter names render as [-x] *)
  docv : string;
  doc : string;
}

val jobs : spec
(** [--jobs N] / [-j N]: worker-pool width. *)

val json : spec
(** [--json FILE]: machine-readable output. *)

val seed : spec
(** [--seed SEED]: master seed. *)

val canonical : spec -> string
(** The flag's primary rendering, e.g. ["--jobs"]. *)

val extract : spec -> string list -> (string option * string list, string) result
(** Scan an argv-style list for the flag (accepting [--name value],
    [--name=value] and one-letter [-x value] forms), returning its value
    (last occurrence wins) and the remaining arguments in order.
    [Error] describes a flag given without a value. *)

val extract_int :
  spec -> min:int -> string list -> (int option * string list, string) result
(** {!extract} plus integer validation against a lower bound. *)
