(** The unified I/O completion record.

    Every result-typed device operation ({!Blockdev.Device.t}) resolves
    to a [completion]: the latency {!Breakdown.t} of the request, the
    trace span that covered it, and any op-specific counter deltas the
    device wants to surface (bounded-retry counts, firmware remaps,
    eager-write reallocations).  The span id is a bare [int] so this
    module carries no dependency on the trace library; [no_span] marks
    a request served with tracing off. *)

type completion = {
  breakdown : Breakdown.t;  (** where the simulated time went *)
  span : int;  (** trace span id, {!no_span} when tracing is disabled *)
  counters : (string * int) list;
      (** op-specific deltas, e.g. [("retries", 2)]; empty on the
          fault-free fast path *)
}

val no_span : int
(** The span id used when no trace sink observed the request. *)

val make : ?span:int -> ?counters:(string * int) list -> Breakdown.t -> completion
(** [make bd] is a completion with [span = no_span] and no counters. *)

val bd : completion -> Breakdown.t
(** The completion's breakdown. *)

val counter : completion -> string -> int
(** [counter c name] is the delta reported under [name], or [0]. *)

val pp : Format.formatter -> completion -> unit
