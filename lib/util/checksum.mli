(** 64-bit FNV-1a checksums.

    Used by the virtual log to validate the landing-zone tail record and to
    "cryptographically sign" map sectors so the full-scan recovery fallback
    can recognize them.  FNV-1a is obviously not a cryptographic hash; it
    stands in for one here exactly as the simulated disk stands in for
    hardware — the recovery logic only needs a detector for corrupt or
    foreign sectors. *)

type t = int64

val empty : t
(** The FNV-1a offset basis. *)

val add_bytes : t -> Bytes.t -> t

val add_sub_bytes : t -> Bytes.t -> pos:int -> len:int -> t
(** [add_bytes] over [buf.(pos .. pos+len-1)] without copying the slice. *)

val add_words : t -> Bytes.t -> pos:int -> len:int -> t
(** FNV-1a over the same region consumed as little-endian 64-bit words
    (any trailing bytes one at a time) — a {e different} checksum from
    {!add_sub_bytes}, one multiply per word instead of per byte.  The
    block codecs digest 4 KB bodies with this.  Any single corrupted
    word is still detected deterministically: each step is a bijection
    of the accumulator for fixed input, so states that diverge once
    never reconverge on an identical suffix. *)

val add_string : t -> string -> t
val add_int : t -> int -> t
val add_int64 : t -> int64 -> t

val bytes : Bytes.t -> t
(** One-shot digest of a byte buffer. *)

val string : string -> t

val to_hex : t -> string
