(** Simulated wall clock.

    All components of the simulator share one clock and advance it as they
    consume simulated time.  Time is a [float] count of milliseconds since
    the start of the run — the unit the paper reports latencies in. *)

type t

val create : unit -> t
(** A clock at time 0. *)

val now : t -> float
val advance : t -> float -> unit
(** [advance t dt] moves time forward by [dt] ms. Requires [dt >= 0.]. *)

val advance_to : t -> float -> unit
(** [advance_to t when_] moves time forward to [when_] if it is in the
    future; a [when_] in the past is a no-op (the event already fits). *)

val warp : t -> float -> unit
(** [warp t when_] repositions the clock at [when_], possibly in the
    past.  Unlike [advance]/[advance_to] a warp does not add to
    [advanced_total]: it repositions the timeline rather than consuming
    simulated time.  Meant for engines that simulate independently-timed
    devices (e.g. the spindles of a disk array) on one shared clock:
    park the clock at a device's dispatch instant, let the device
    advance it while servicing, record the finish, and warp to the next
    device's window. *)

val reset : t -> unit

val advanced_total : unit -> float
(** Simulated milliseconds consumed so far across every clock created in
    this process ([reset] does not subtract).  Monotone; meant for
    harnesses that report the simulated time a run consumed as a delta
    of two samples. *)
