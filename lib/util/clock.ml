type t = { mutable now : float }

(* Simulated time consumed across every clock ever created; the bench
   harness reports per-experiment simulated time as deltas of this. *)
let total = ref 0.

let advanced_total () = !total

let create () = { now = 0. }
let now t = t.now

let advance t dt =
  if dt < 0. then invalid_arg "Clock.advance: negative duration";
  t.now <- t.now +. dt;
  total := !total +. dt

let advance_to t when_ =
  if when_ > t.now then begin
    total := !total +. (when_ -. t.now);
    t.now <- when_
  end

let warp t when_ = t.now <- when_
let reset t = t.now <- 0.
