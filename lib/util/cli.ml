type spec = { names : string list; docv : string; doc : string }

let jobs =
  {
    names = [ "jobs"; "j" ];
    docv = "N";
    doc =
      "worker processes to fan independent cells out to (default: detected \
       cores, or $VLSIM_JOBS); results are merged in input order, so the \
       output is identical for every N";
  }

let json =
  {
    names = [ "json" ];
    docv = "FILE";
    doc = "write machine-readable results to FILE";
  }

let seed =
  { names = [ "seed" ]; docv = "SEED"; doc = "master seed for the run" }

let canonical spec = "--" ^ List.hd spec.names

let forms spec =
  List.map (fun n -> if String.length n = 1 then "-" ^ n else "--" ^ n) spec.names

let extract spec args =
  let fs = forms spec in
  let eq_prefixes = List.map (fun f -> f ^ "=") fs in
  let missing () =
    Error (Printf.sprintf "%s requires a %s argument" (canonical spec) spec.docv)
  in
  let rec go value acc = function
    | [] -> Ok (value, List.rev acc)
    | a :: rest when List.mem a fs -> (
      match rest with v :: rest -> go (Some v) acc rest | [] -> missing ())
    | a :: rest
      when List.exists (fun p -> String.starts_with ~prefix:p a) eq_prefixes ->
      let p =
        List.find (fun p -> String.starts_with ~prefix:p a) eq_prefixes
      in
      go (Some (String.sub a (String.length p) (String.length a - String.length p)))
        acc rest
    | a :: rest -> go value (a :: acc) rest
  in
  go None [] args

let extract_int spec ~min args =
  match extract spec args with
  | Error _ as e -> e
  | Ok (None, rest) -> Ok (None, rest)
  | Ok (Some v, rest) -> (
    match int_of_string_opt v with
    | Some n when n >= min -> Ok (Some n, rest)
    | _ ->
      Error
        (Printf.sprintf "%s requires an integer >= %d" (canonical spec) min))
