open Vlog_util

type fs_choice =
  | UFS of { sync_data : bool }
  | LFS of { buffer_blocks : int }
  | VLFS of { sync_writes : bool }

type dev_choice = Regular | VLD

type ops = {
  label : string;
  create : string -> Breakdown.t;
  write : string -> off:int -> Bytes.t -> Breakdown.t;
  read : string -> off:int -> len:int -> Bytes.t * Breakdown.t;
  delete : string -> Breakdown.t;
  sync : unit -> Breakdown.t;
  drop_caches : unit -> unit;
  idle : float -> unit;
  utilization : unit -> float;
}

type t = {
  clock : Clock.t;
  disk : Disk.Disk_sim.t;
  dev : Blockdev.Device.t;
  ops : ops;
  vld : Blockdev.Vld.t option;
  prng : Prng.t;
}

let fail_fs pp = function
  | Ok v -> v
  | Error e -> failwith (Format.asprintf "file system error: %a" pp e)

let ufs_ops ~label ~clock fs dev =
  {
    label;
    create = (fun name -> fail_fs Ufs.pp_error (Ufs.create fs name));
    write = (fun name ~off data -> fail_fs Ufs.pp_error (Ufs.write fs name ~off data));
    read = (fun name ~off ~len -> fail_fs Ufs.pp_error (Ufs.read fs name ~off ~len));
    delete = (fun name -> fail_fs Ufs.pp_error (Ufs.delete fs name));
    sync = (fun () -> Ufs.sync fs);
    drop_caches = (fun () -> Ufs.drop_caches fs);
    idle = (fun dt -> Blockdev.Device.advance_idle ~clock dev dt);
    utilization = (fun () -> Ufs.utilization fs);
  }

let lfs_ops ~label ~clock fs dev =
  {
    label;
    create = (fun name -> fail_fs Lfs.pp_error (Lfs.create fs name));
    write = (fun name ~off data -> fail_fs Lfs.pp_error (Lfs.write fs name ~off data));
    read = (fun name ~off ~len -> fail_fs Lfs.pp_error (Lfs.read fs name ~off ~len));
    delete = (fun name -> fail_fs Lfs.pp_error (Lfs.delete fs name));
    sync = (fun () -> Lfs.sync fs);
    drop_caches = (fun () -> Lfs.drop_caches fs);
    idle =
      (fun dt ->
        let until = Clock.now clock +. dt in
        ignore (Lfs.idle_work fs ~deadline:until);
        (* Whatever time remains goes to the device (VLD compaction). *)
        let remaining = until -. Clock.now clock in
        if remaining > 0. then Blockdev.Device.advance_idle ~clock dev remaining
        else Clock.advance_to clock until);
    utilization = (fun () -> Lfs.utilization fs);
  }

let vlfs_ops ~label ~clock fs =
  {
    label;
    create = (fun name -> fail_fs Vlfs.pp_error (Vlfs.create fs name));
    write = (fun name ~off data -> fail_fs Vlfs.pp_error (Vlfs.write fs name ~off data));
    read = (fun name ~off ~len -> fail_fs Vlfs.pp_error (Vlfs.read fs name ~off ~len));
    delete = (fun name -> fail_fs Vlfs.pp_error (Vlfs.delete fs name));
    sync = (fun () -> Vlfs.sync fs);
    drop_caches = (fun () -> Vlfs.drop_caches fs);
    idle =
      (fun dt ->
        let until = Clock.now clock +. dt in
        Vlfs.idle fs dt;
        Clock.advance_to clock until);
    utilization = (fun () -> Vlfs.utilization fs);
  }

let make ?(seed = 0xC0FFEEL) ?cylinders ?(vld_eager_mode = Vlog.Eager.Sweep)
    ?(vld_compaction = Vlog.Compactor.Random_target) ?(trace = false) ~profile ~host ~fs
    ~dev () =
  let profile =
    match cylinders with
    | Some c -> Disk.Profile.with_cylinders profile c
    | None -> profile
  in
  let clock = Clock.create () in
  let trace = if trace then Trace.create ~clock () else Trace.null in
  let buffer_policy =
    match (fs, dev) with
    | VLFS _, _ -> Disk.Track_buffer.Whole_track (* VLFS is the disk's firmware *)
    | _, Regular -> Disk.Track_buffer.Forward_discard
    | _, VLD -> Disk.Track_buffer.Whole_track
  in
  let disk = Disk.Disk_sim.create ~buffer_policy ~profile ~clock ~trace () in
  let prng = Prng.create ~seed in
  let vld, device =
    match (fs, dev) with
    | VLFS _, _ ->
      (* VLFS runs directly on the drive.  The device record here is a
         capacity stand-in (rig sizing math); no I/O flows through it. *)
      (None, Blockdev.Regular_disk.device (Blockdev.Regular_disk.create ~disk ()))
    | _, Regular ->
      (None, Blockdev.Regular_disk.device (Blockdev.Regular_disk.create ~disk ()))
    | _, VLD ->
      let total_blocks = Disk.Geometry.total_sectors (Disk.Disk_sim.geometry disk) / 8 in
      (* Leave the virtual log its map pieces plus the allocation
         reserve; export the rest. *)
      let map_pieces = 1 + (total_blocks / 900) in
      let logical_blocks = total_blocks - map_pieces - 8 in
      let v =
        Blockdev.Vld.create ~eager_mode:vld_eager_mode ~compaction_policy:vld_compaction
          ~disk ~logical_blocks ~prng:(Prng.split prng) ()
      in
      (Some v, Blockdev.Vld.device v)
  in
  let dev_label = match dev with Regular -> "regular" | VLD -> "vld" in
  let ops =
    match fs with
    | UFS { sync_data } ->
      let fs = Ufs.format ~dev:device ~host ~clock { Ufs.default_config with sync_data } in
      ufs_ops ~label:(Printf.sprintf "UFS/%s" dev_label) ~clock fs device
    | LFS { buffer_blocks } ->
      let fs =
        Lfs.format ~dev:device ~host ~clock { Lfs.default_config with buffer_blocks }
      in
      lfs_ops ~label:(Printf.sprintf "LFS/%s" dev_label) ~clock fs device
    | VLFS { sync_writes } ->
      let fs =
        Vlfs.format ~disk ~host ~clock { Vlfs.default_config with Vlfs.sync_writes }
      in
      vlfs_ops ~label:(if sync_writes then "VLFS" else "VLFS/buffered") ~clock fs
  in
  { clock; disk; dev = device; ops; vld; prng }

let trace t = Disk.Disk_sim.trace t.disk

let elapsed t f =
  let t0 = Clock.now t.clock in
  let v = f () in
  (v, Clock.now t.clock -. t0)
