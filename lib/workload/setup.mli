(** Experiment rigs: the four file-system/disk combinations of Figure 5,
    assembled behind one operations record so benchmark drivers are
    agnostic to what they drive. *)

type fs_choice =
  | UFS of { sync_data : bool }
  | LFS of { buffer_blocks : int }
      (** [buffer_blocks] is the write buffer ("NVRAM") size in 4 KB
          blocks; the paper uses 6.1 MB = 1561 blocks. *)
  | VLFS of { sync_writes : bool }
      (** the Section 3.3 file system, integrated with the drive; the
          [dev] choice is ignored (VLFS {e is} the disk firmware) *)

type dev_choice = Regular | VLD

(** Uniform file-system interface.  Operations raise [Failure] on file
    system errors — in a benchmark an error is a configuration bug. *)
type ops = {
  label : string;
  create : string -> Vlog_util.Breakdown.t;
  write : string -> off:int -> Bytes.t -> Vlog_util.Breakdown.t;
  read : string -> off:int -> len:int -> Bytes.t * Vlog_util.Breakdown.t;
  delete : string -> Vlog_util.Breakdown.t;
  sync : unit -> Vlog_util.Breakdown.t;
  drop_caches : unit -> unit;
  idle : float -> unit;
      (** Grant an idle window of the given length and advance the clock
          to its end: LFS cleans and background-flushes, a VLD compacts. *)
  utilization : unit -> float;  (** the [df] number *)
}

type t = {
  clock : Vlog_util.Clock.t;
  disk : Disk.Disk_sim.t;
  dev : Blockdev.Device.t;
  ops : ops;
  vld : Blockdev.Vld.t option;
  prng : Vlog_util.Prng.t;
}

val make :
  ?seed:int64 ->
  ?cylinders:int ->
  ?vld_eager_mode:Vlog.Eager.mode ->
  ?vld_compaction:Vlog.Compactor.target_policy ->
  ?trace:bool ->
  profile:Disk.Profile.t ->
  host:Host.t ->
  fs:fs_choice ->
  dev:dev_choice ->
  unit ->
  t
(** Build a fresh rig.  [cylinders] overrides the simulated slice size
    (default: the profile's own — the paper's 24 MB); the [vld_*]
    parameters select allocator / compactor policy variants for the
    ablation benches.  [trace] (default [false]) attaches a recording
    {!Trace} sink to the rig's clock and threads it through every layer;
    retrieve it with {!trace}. *)

val trace : t -> Trace.sink
(** The rig's trace sink ({!Trace.null} unless [make ~trace:true]). *)

val elapsed : t -> (unit -> 'a) -> 'a * float
(** Run a closure and report the simulated milliseconds it consumed. *)
