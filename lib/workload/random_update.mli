(** Random synchronous small-update benchmark (Figures 8 and 9, Table 2).

    One file of a given size; repeated random 4 KB overwrites with no
    idle time.  For UFS every write reaches the platter before returning;
    for LFS the write buffer ("NVRAM") absorbs updates and flushes —
    cleaner included — when full.  The steady-state mean latency per
    block is the paper's y-axis. *)

type result = {
  mean_latency_ms : float;
  p50_ms : float;  (** per-update wall-latency median, from a {!Trace.Histogram} *)
  p99_ms : float;  (** per-update wall-latency 99th percentile *)
  breakdown : Vlog_util.Breakdown.t;  (** mean per-update breakdown (Fig. 9) *)
  utilization : float;                (** the [df] number at measurement time *)
  updates : int;
}

val run :
  ?updates:int ->
  ?warmup:int ->
  ?compact_first:bool ->
  file_mb:float ->
  Setup.t ->
  result
(** Create and fill a [file_mb]-MB file, optionally give the device a
    long idle window so the compactor runs ([compact_first], used for the
    Table 2 / Figure 9 measurements, as the paper does), then measure
    [updates] random 4 KB rewrites after [warmup] unmeasured ones. *)
