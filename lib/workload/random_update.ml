open Vlog_util

type result = {
  mean_latency_ms : float;
  p50_ms : float;
  p99_ms : float;
  breakdown : Breakdown.t;
  utilization : float;
  updates : int;
}

let file = "updatefile"
let block = 4096

let run ?(updates = 500) ?(warmup = 50) ?(compact_first = false) ~file_mb (t : Setup.t) =
  let ops = t.Setup.ops in
  let blocks = int_of_float (file_mb *. 1048576.) / block in
  if blocks <= 0 then invalid_arg "Random_update.run: file too small";
  let prng = Prng.split t.Setup.prng in
  ignore (ops.Setup.create file);
  (* Fill sequentially in large chunks (placement as a real file). *)
  let chunk_blocks = 16 in
  let data = Bytes.make (chunk_blocks * block) 'f' in
  let full_chunks = blocks / chunk_blocks in
  for c = 0 to full_chunks - 1 do
    ignore (ops.Setup.write file ~off:(c * chunk_blocks * block) data)
  done;
  let rest = blocks - (full_chunks * chunk_blocks) in
  if rest > 0 then
    ignore
      (ops.Setup.write file
         ~off:(full_chunks * chunk_blocks * block)
         (Bytes.make (rest * block) 'f'));
  ignore (ops.Setup.sync ());
  if compact_first then ops.Setup.idle 60_000.;
  let payload = Bytes.make block 'u' in
  let one () = ignore (ops.Setup.write file ~off:(Prng.int prng blocks * block) payload) in
  for _ = 1 to warmup do
    one ()
  done;
  let utilization = ops.Setup.utilization () in
  let acc = Breakdown.Acc.create () in
  (* Per-update wall latencies feed a log-scale trace histogram, so the
     tail is reported with ~5 % relative precision at any update count. *)
  let hist = Trace.Histogram.create () in
  let (), total_ms =
    Setup.elapsed t (fun () ->
        for _ = 1 to updates do
          let t0 = Clock.now t.Setup.clock in
          let bd =
            ops.Setup.write file ~off:(Prng.int prng blocks * block) payload
          in
          let wall = Clock.now t.Setup.clock -. t0 in
          Trace.Histogram.observe hist wall;
          (* The returned breakdown covers the visible work; flush storms
             (LFS buffer fills) surface as extra wall time, attributed to
             "other" so Figure 9 totals equal wall-clock. *)
          let missing = wall -. Breakdown.total bd in
          let bd =
            if missing > 1e-9 then Breakdown.add bd (Breakdown.of_other missing) else bd
          in
          Breakdown.Acc.add acc bd
        done)
  in
  {
    mean_latency_ms = total_ms /. float_of_int updates;
    p50_ms = Trace.Histogram.percentile hist 50.;
    p99_ms = Trace.Histogram.percentile hist 99.;
    breakdown = Breakdown.Acc.mean acc;
    utilization;
    updates;
  }
