(** Open-loop arrival processes.

    The paper's workloads are closed loops: one request at a time, the
    next issued when the last completes, so the drive never sees a
    queue.  An open-loop process instead fixes the {e offered load} —
    requests arrive on their own schedule whether or not earlier ones
    have finished — which is what exposes queueing behaviour: at low
    load the queue is empty, near saturation the wait explodes, and the
    in-drive scheduler's reordering gain shows up as extra sustainable
    throughput.

    Timestamps are simulated milliseconds.  Generation is pure and
    deterministic from the PRNG; it neither reads nor advances the
    clock. *)

type process =
  | Poisson
      (** memoryless: exponential interarrivals at the offered rate *)
  | Bursty of { burst : int; spread_ms : float }
      (** arrivals come in bursts of [burst] requests whose starts are
          Poisson at [rate / burst] (so the offered load matches), each
          burst's requests spread uniformly over [spread_ms] *)

val process_to_string : process -> string

val arrivals :
  prng:Vlog_util.Prng.t ->
  process:process ->
  rate_per_s:float ->
  start:float ->
  int ->
  float list
(** [arrivals ~prng ~process ~rate_per_s ~start n] is [n] arrival
    timestamps (ms), sorted non-decreasing, beginning at or after
    [start], with long-run rate [rate_per_s] requests per simulated
    second. *)
