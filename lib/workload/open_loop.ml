open Vlog_util

type process =
  | Poisson
  | Bursty of { burst : int; spread_ms : float }

let process_to_string = function
  | Poisson -> "poisson"
  | Bursty { burst; spread_ms } -> Printf.sprintf "bursty:%d/%gms" burst spread_ms

(* Exponential interarrival with the given mean; [1 - u] keeps the
   argument of [log] in (0, 1]. *)
let exp_ms prng ~mean_ms = -.mean_ms *. log (1. -. Prng.float prng 1.)

let arrivals ~prng ~process ~rate_per_s ~start n =
  if rate_per_s <= 0. then invalid_arg "Open_loop.arrivals: rate must be positive";
  if n < 0 then invalid_arg "Open_loop.arrivals: negative count";
  let mean_ms = 1000. /. rate_per_s in
  match process with
  | Poisson ->
    let t = ref start in
    List.init n (fun _ ->
        t := !t +. exp_ms prng ~mean_ms;
        !t)
  | Bursty { burst; spread_ms } ->
    if burst <= 0 then invalid_arg "Open_loop.arrivals: burst must be positive";
    if spread_ms < 0. then invalid_arg "Open_loop.arrivals: negative spread";
    let burst_mean_ms = mean_ms *. float_of_int burst in
    let t = ref start in
    let rec gen acc remaining =
      if remaining <= 0 then acc
      else begin
        t := !t +. exp_ms prng ~mean_ms:burst_mean_ms;
        let k = min burst remaining in
        let members =
          List.init k (fun _ -> !t +. Prng.float prng (Float.max spread_ms 1e-9))
        in
        gen (List.rev_append members acc) (remaining - k)
      end
    in
    List.sort compare (gen [] n)
