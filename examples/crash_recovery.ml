(* Crash recovery demonstration: the virtual log's three recovery paths.

   1. Clean power-down: the firmware records the log tail in the landing
      zone; recovery traverses the map tree from it (a handful of reads).
   2. Crash (no tail record): recovery falls back to scanning the disk
      for cryptographically signed map nodes.
   3. Crash that tears the commit node of a multi-block transaction: the
      transaction is rolled back atomically — either all of its entries
      are visible or none.
   4. Bit rot on a mid-chain map node: the tail-led traversal hits an
      unreadable node, skips it, and merges a signature scan instead of
      aborting — entries fall back to their previous committed version.

   Run with:  dune exec examples/crash_recovery.exe *)

open Vlog_util
open Vlog

let profile = Disk.Profile.st19101

let fresh () =
  let clock = Clock.create () in
  let disk =
    Disk.Disk_sim.create ~buffer_policy:Disk.Track_buffer.Whole_track ~profile ~clock ()
  in
  let vlog = Virtual_log.format ~disk (Virtual_log.default_config ~logical_blocks:2000) in
  (disk, vlog)

(* The VLD write path by hand: data first, then the map update. *)
let write_block vlog disk logical tag =
  let fm = Virtual_log.freemap vlog in
  let pba = Option.get (Eager.choose (Virtual_log.eager vlog)) in
  Freemap.occupy fm pba;
  ignore
    (Disk.Disk_sim.write disk ~lba:(Freemap.lba_of_block fm pba) (Bytes.make 4096 tag));
  ignore (Virtual_log.update vlog [ (logical, Some pba) ]);
  pba

let report r =
  Format.printf
    "   used_tail=%b nodes_read=%d blocks_scanned=%d pruned=%d rolled_back=%d \
     corrupt=%d (%.2f ms)@."
    r.Virtual_log.used_tail r.Virtual_log.nodes_read r.Virtual_log.blocks_scanned
    r.Virtual_log.edges_pruned r.Virtual_log.uncommitted_skipped
    r.Virtual_log.corrupt_nodes
    (Breakdown.total r.Virtual_log.duration)

let () =
  (* --- 1. clean power-down --- *)
  Format.printf "1. Clean power-down:@.";
  let disk, vlog = fresh () in
  for i = 0 to 49 do
    ignore (write_block vlog disk i 'a')
  done;
  ignore (Virtual_log.power_down vlog);
  (match Virtual_log.recover ~disk () with
  | Ok (_, r) -> report r
  | Error e -> Format.printf "   FAILED: %s@." e);

  (* --- 2. crash without power-down --- *)
  Format.printf "2. Crash (stale/cleared tail record -> full scan):@.";
  let disk, vlog = fresh () in
  for i = 0 to 49 do
    ignore (write_block vlog disk i 'b')
  done;
  (* no power_down: the landing zone holds only the cleared record *)
  (match Virtual_log.recover ~disk () with
  | Ok (vlog2, r) ->
    report r;
    let ok = Virtual_log.lookup vlog2 49 <> None in
    Format.printf "   all committed writes present: %b@." ok
  | Error e -> Format.printf "   FAILED: %s@." e);

  (* --- 3. torn commit node: atomic rollback --- *)
  Format.printf "3. Torn multi-block transaction (atomicity):@.";
  let disk, vlog = fresh () in
  ignore (write_block vlog disk 5 'c');
  (* A transaction touching two map pieces; logical 5 and 1500 live in
     different pieces, so two map nodes are written, commit flag on the
     second. *)
  let fm = Virtual_log.freemap vlog in
  let pba1 = Option.get (Eager.choose (Virtual_log.eager vlog)) in
  Freemap.occupy fm pba1;
  ignore (Disk.Disk_sim.write disk ~lba:(Freemap.lba_of_block fm pba1) (Bytes.make 4096 'X'));
  let pba2 = Option.get (Eager.choose (Virtual_log.eager vlog)) in
  Freemap.occupy fm pba2;
  ignore (Disk.Disk_sim.write disk ~lba:(Freemap.lba_of_block fm pba2) (Bytes.make 4096 'Y'));
  ignore (Virtual_log.update vlog [ (5, Some pba1); (1500, Some pba2) ]);
  (* Tear the commit node (the last node written: the piece of logical
     1500). *)
  let piece = 1500 / Map_codec.max_entries ~block_bytes:4096 in
  let loc = Option.get (Virtual_log.piece_location vlog piece) in
  let prng = Prng.create ~seed:1L in
  Disk.Sector_store.corrupt (Disk.Disk_sim.store disk) ~lba:(loc * 8) ~sectors:8 prng;
  (match Virtual_log.recover ~disk () with
  | Ok (vlog2, r) ->
    report r;
    Format.printf "   entry 5    -> %s (pre-transaction version retained)@."
      (match Virtual_log.lookup vlog2 5 with Some _ -> "mapped" | None -> "unmapped");
    Format.printf "   entry 1500 -> %s (torn transaction invisible)@."
      (match Virtual_log.lookup vlog2 1500 with Some _ -> "mapped" | None -> "unmapped")
  | Error e -> Format.printf "   FAILED: %s@." e);

  (* --- 4. silent decay of a mid-chain map node --- *)
  Format.printf "4. Bit rot on a mid-chain map node (skip and scan):@.";
  let disk, vlog = fresh () in
  (* Two generations of every block, so each map piece has an older node
     for recovery to fall back on when its newest node is unreadable. *)
  for i = 0 to 49 do
    ignore (write_block vlog disk i 'd')
  done;
  for i = 0 to 49 do
    ignore (write_block vlog disk i 'e')
  done;
  ignore (Virtual_log.power_down vlog);
  (* One sector of piece 0's newest node decays in storage: the media ECC
     will reject the read, mid-traversal. *)
  let loc = Option.get (Virtual_log.piece_location vlog 0) in
  let prng = Prng.create ~seed:2L in
  Disk.Sector_store.rot (Disk.Disk_sim.store disk) ~lba:(loc * 8) ~sectors:1 prng;
  match Virtual_log.recover ~disk () with
  | Ok (vlog2, r) ->
    report r;
    let mapped = ref 0 in
    for i = 0 to 49 do
      if Virtual_log.lookup vlog2 i <> None then incr mapped
    done;
    Format.printf
      "   corrupt node skipped, scan merged; %d/50 entries recovered from the \
       older generation@."
      !mapped
  | Error e -> Format.printf "   FAILED: %s@." e
