(* Quickstart: bring up a Virtual Log Disk on a simulated Seagate ST19101,
   write a few synchronous blocks, read them back, power the drive down,
   and recover it from the platters.

   Run with:  dune exec examples/quickstart.exe *)

open Vlog_util

let () =
  (* 1. A simulated drive.  The VLD wants the whole-track read-ahead
     policy (Section 4.2 of the paper). *)
  let clock = Clock.create () in
  let disk =
    Disk.Disk_sim.create ~buffer_policy:Disk.Track_buffer.Whole_track
      ~profile:Disk.Profile.st19101 ~clock ()
  in
  Format.printf "Disk: %a@." Disk.Profile.pp (Disk.Disk_sim.profile disk);

  (* 2. Format a VLD exporting 2000 4 KB logical blocks. *)
  let prng = Prng.create ~seed:42L in
  let vld = Blockdev.Vld.create ~disk ~logical_blocks:2000 ~prng () in
  let dev = Blockdev.Vld.device vld in

  (* 3. Synchronous writes: each returns once the data block AND its map
     update are on the platter.  Note the latency: no half-rotation wait. *)
  let payload i = Bytes.make dev.Blockdev.Device.block_bytes (Char.chr (65 + i)) in
  for i = 0 to 9 do
    let bd = Blockdev.Device.write dev (i * 100) (payload i) in
    Format.printf "write block %4d: %a@." (i * 100) Breakdown.pp bd
  done;

  (* 4. Read back. *)
  let data, bd = Blockdev.Device.read dev 300 in
  Format.printf "read  block  300: first byte %c, %a@." (Bytes.get data 0) Breakdown.pp bd;

  (* 5. Power down: the firmware parks the head and records the log tail
     in the landing zone. *)
  ignore (Blockdev.Vld.power_down vld);
  Format.printf "powered down at t=%.3f ms@." (Clock.now clock);

  (* 6. Recover from the platters alone. *)
  match Blockdev.Vld.recover ~disk ~prng () with
  | Error e -> Format.printf "recovery failed: %s@." e
  | Ok (vld2, report) ->
    Format.printf
      "recovered: used_tail=%b, nodes_read=%d, scanned=%d, in %a@."
      report.Vlog.Virtual_log.used_tail report.Vlog.Virtual_log.nodes_read
      report.Vlog.Virtual_log.blocks_scanned Breakdown.pp
      report.Vlog.Virtual_log.duration;
    let dev2 = Blockdev.Vld.device vld2 in
    let data, _ = Blockdev.Device.read dev2 300 in
    Format.printf "block 300 after recovery: first byte %c@." (Bytes.get data 0)
