(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section, plus the ablation benches, and (with [micro]) runs
   Bechamel micro-benchmarks of the core operations.

   Usage:
     dune exec bench/main.exe                 # all tables+figures, full scale
     dune exec bench/main.exe -- --quick      # smoke-test sizes
     dune exec bench/main.exe -- fig8 table2  # a subset
     dune exec bench/main.exe -- --jobs 4     # fan cells out to 4 workers
     dune exec bench/main.exe -- micro        # Bechamel micro-benchmarks
     dune exec bench/main.exe -- --json out.json fig8   # machine-readable timings
     dune exec bench/main.exe -- qdepth       # latency-under-load curves
     dune exec bench/main.exe -- array        # 16-spindle array study
     dune exec bench/main.exe -- nvm          # NVM staging-tier study
                                              # (standalone: own JSON schemas)

   Experiments (and, for the big grids, their individual cells) run
   through the [Par] worker pool; [--jobs N] sets the pool width
   (default: detected cores, or $VLSIM_JOBS).  Results are merged in
   input order, so the tables are byte-identical for every N.

   [--json FILE] writes one record per experiment run:
     [{"name": "fig8", "wall_s": 1.23, "elapsed_s": 2.46,
       "sim_ms": 56789.123, "scale": "quick", "jobs": 2}, ...]
   where [wall_s] is the experiment's host wall-clock span (first of its
   jobs dispatched to last finished), [elapsed_s] the summed in-worker
   compute seconds of its jobs, and [sim_ms] the simulated milliseconds
   it consumed (delta of [Vlog_util.Clock.advanced_total] around each
   job).  The schema is documented in DESIGN.md; CI's bench-smoke job
   validates it, and the par-determinism job diffs the [jobs]-invariant
   fields between a sequential and a parallel run. *)

open Experiments

let scale = ref Rigs.Full
let json_out : string option ref = ref None

let write_json path jobs (timings : Suite.timing list) =
  let oc = open_out path in
  let scale_s = match !scale with Rigs.Quick -> "quick" | Rigs.Full -> "full" in
  let n = List.length timings in
  output_string oc "[\n";
  List.iteri
    (fun i (t : Suite.timing) ->
      (* Experiments that report per-cell percentiles (fig8) add a
         [cells] array; the scalar fields stay exactly as before. *)
      let cells =
        match t.Suite.t_cells with
        | [] -> ""
        | cs ->
          let m = List.length cs in
          ", \"cells\": ["
          ^ String.concat ""
              (List.mapi
                 (fun j (label, p50, p99) ->
                   Printf.sprintf
                     "{\"label\": %S, \"p50_ms\": %.6f, \"p99_ms\": %.6f}%s"
                     label p50 p99
                     (if j = m - 1 then "" else ", "))
                 cs)
          ^ "]"
      in
      Printf.fprintf oc
        "  {\"name\": %S, \"wall_s\": %.6f, \"elapsed_s\": %.6f, \"sim_ms\": \
         %.3f, \"scale\": %S, \"jobs\": %d%s}%s\n"
        t.Suite.t_name t.Suite.t_wall_s t.Suite.t_elapsed_s t.Suite.t_sim_ms
        scale_s jobs cells
        (if i = n - 1 then "" else ","))
    timings;
  output_string oc "]\n";
  close_out oc

(* ---- Bechamel micro-benchmarks of the core operations ---- *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  let make_vld_rig () =
    Rigs.rig ~fs:(Workload.Setup.UFS { sync_data = true }) ~dev:Workload.Setup.VLD ()
  in
  let vld_rig = make_vld_rig () in
  let reg_rig =
    Rigs.rig ~fs:(Workload.Setup.UFS { sync_data = true }) ~dev:Workload.Setup.Regular ()
  in
  let payload = Bytes.make 4096 'b' in
  let counter = ref 0 in
  let n_blocks rig = rig.Workload.Setup.dev.Blockdev.Device.n_blocks in
  let write_block rig () =
    incr counter;
    ignore (rig.Workload.Setup.dev.Blockdev.Device.write (!counter * 37 mod n_blocks rig) payload)
  in
  let node =
    {
      Vlog.Map_codec.seq = 1L;
      piece = 0;
      kind = Vlog.Map_codec.Node;
      txn_id = 1L;
      txn_commit = true;
      ptrs = [ { Vlog.Map_codec.pba = 1; seq = 0L } ];
      entries = Array.make 900 7;
    }
  in
  let encoded = Vlog.Map_codec.encode_node ~block_bytes:4096 node in
  (* Eager allocation at 95% utilization — where the indexed search has
     to prune hardest.  Same freemap state for every variant; [search]
     is pure, so each run does the full search from scratch. *)
  let eager_alloc mode =
    let clock = Vlog_util.Clock.create () in
    let disk = Disk.Disk_sim.create ~profile:Rigs.seagate ~clock () in
    let g = Disk.Disk_sim.geometry disk in
    let freemap = Vlog.Freemap.create ~geometry:g ~sectors_per_block:8 in
    let prng = Vlog_util.Prng.create ~seed:0x95L in
    Vlog.Freemap.random_occupy freemap prng ~utilization:0.95;
    Vlog.Eager.create ~mode ~disk ~freemap ()
  in
  let eager_sweep = eager_alloc Vlog.Eager.Sweep in
  let eager_nearest = eager_alloc Vlog.Eager.Nearest in
  let no_exclude _ = false in
  let tests =
    Test.make_grouped ~name:"vlogfs"
      [
        Test.make ~name:"vld-sync-write-4k" (Staged.stage (write_block vld_rig));
        Test.make ~name:"regular-sync-write-4k" (Staged.stage (write_block reg_rig));
        Test.make ~name:"map-node-encode"
          (Staged.stage (fun () ->
               ignore (Vlog.Map_codec.encode_node ~block_bytes:4096 node)));
        Test.make ~name:"map-node-decode"
          (Staged.stage (fun () -> ignore (Vlog.Map_codec.decode_node encoded)));
        Test.make ~name:"analytic-cylinder-model"
          (Staged.stage (fun () ->
               ignore (Models.Cylinder_model.locate_ms Rigs.seagate ~p:0.2)));
        Test.make ~name:"eager-alloc-sweep-95"
          (Staged.stage (fun () ->
               ignore
                 (Vlog.Eager.search eager_sweep ~exclude_tracks:no_exclude
                    ~lead_time:0.)));
        Test.make ~name:"eager-alloc-nearest-95"
          (Staged.stage (fun () ->
               ignore
                 (Vlog.Eager.search eager_nearest ~exclude_tracks:no_exclude
                    ~lead_time:0.)));
        Test.make ~name:"eager-alloc-reference-95"
          (Staged.stage (fun () ->
               ignore
                 (Vlog.Eager.Reference.search eager_sweep
                    ~exclude_tracks:no_exclude ~lead_time:0.)));
      ]
  in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:(Some 500) () in
  let instances = Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let results, _ = (Analyze.merge ols instances [ results ], raw) in
  let window =
    match Notty_unix.winsize Unix.stdout with
    | Some (w, h) -> { Bechamel_notty.w; h }
    | None -> { Bechamel_notty.w = 100; h = 1 }
  in
  let () =
    Bechamel_notty.Unit.add Instance.monotonic_clock
      (Measure.unit Instance.monotonic_clock)
  in
  let img = Bechamel_notty.Multiple.image_of_ols_results ~rect:window ~predictor:Measure.run results in
  Notty_unix.eol img |> Notty_unix.output_image

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  (* The cross-cutting flags come from the shared vocabulary, so bench
     and vlsim accept identical spellings. *)
  let get = function
    | Ok v -> v
    | Error msg ->
      prerr_endline msg;
      exit 2
  in
  let open Vlog_util in
  let jobs_opt, args = get (Cli.extract_int Cli.jobs ~min:1 args) in
  let jobs = ref (match jobs_opt with Some j -> j | None -> Par.default_jobs ()) in
  let json_path, args = get (Cli.extract Cli.json args) in
  json_out := json_path;
  let seed_opt, args = get (Cli.extract_int Cli.seed ~min:0 args) in
  let quick = List.mem "--quick" args in
  if quick then scale := Rigs.Quick;
  let names = List.filter (fun a -> a <> "--quick") args in
  let want_micro = List.mem "micro" names in
  let names = List.filter (fun a -> a <> "micro") names in
  let want_qdepth = List.mem "qdepth" names in
  let names = List.filter (fun a -> a <> "qdepth") names in
  let want_array = List.mem "array" names in
  let names = List.filter (fun a -> a <> "array") names in
  let want_nvm = List.mem "nvm" names in
  let names = List.filter (fun a -> a <> "nvm") names in
  let want_faults = List.mem "--faults" names in
  let names = List.filter (fun a -> a <> "--faults") names in
  if want_faults && not want_array then begin
    prerr_endline "--faults only applies to the array experiment";
    exit 2
  end;
  let standalones =
    (if want_qdepth then 1 else 0)
    + (if want_array then 1 else 0)
    + (if want_nvm then 1 else 0)
  in
  if standalones > 0 && (names <> [] || want_micro || standalones > 1) then begin
    prerr_endline
      "qdepth, array and nvm write their own per-cell JSON schemas; run \
       each without other experiments";
    exit 2
  end;
  if want_array then begin
    let results =
      Array_bench.run ?seed:seed_opt ~faults:want_faults ~jobs:!jobs
        ~scale:!scale ()
    in
    print_string (Array_bench.render results);
    print_newline ();
    (match !json_out with
    | Some path ->
      let oc = open_out path in
      output_string oc (Array_bench.to_json ~scale:!scale ~jobs:!jobs results);
      close_out oc
    | None -> ());
    exit 0
  end;
  if want_nvm then begin
    let results = Nvm_bench.run ?seed:seed_opt ~jobs:!jobs ~scale:!scale () in
    print_string (Table.render (Nvm_bench.table_of results));
    print_newline ();
    Printf.printf
      "criteria: latency_ratio %.1fx (>=10: %s), overload_ratio %.2fx \
       (<=1.25: %s)\n"
      results.Nvm_bench.criteria.Nvm_bench.latency_ratio
      (if results.Nvm_bench.criteria.Nvm_bench.latency_ok then "ok" else "FAIL")
      results.Nvm_bench.criteria.Nvm_bench.overload_ratio
      (if results.Nvm_bench.criteria.Nvm_bench.overload_ok then "ok" else "FAIL");
    (match !json_out with
    | Some path ->
      let oc = open_out path in
      output_string oc (Nvm_bench.to_json ~scale:!scale ~jobs:!jobs results);
      close_out oc
    | None -> ());
    exit 0
  end;
  if want_qdepth then begin
    let results = Qdepth.run ?seed:seed_opt ~jobs:!jobs ~scale:!scale () in
    print_string (Table.render (Qdepth.table_of results));
    print_newline ();
    (match !json_out with
    | Some path ->
      let oc = open_out path in
      output_string oc (Qdepth.to_json ~scale:!scale ~jobs:!jobs results);
      close_out oc
    | None -> ());
    exit 0
  end;
  let to_run =
    match names with
    | [] -> Suite.names
    | names ->
      List.iter
        (fun n ->
          if not (List.mem n Suite.names) then begin
            Printf.eprintf "unknown experiment %s (known: %s)\n" n
              (String.concat ", " Suite.names);
            exit 2
          end)
        names;
      names
  in
  (if to_run <> [] then
     let progress ~completed ~total ~label =
       Printf.eprintf "[%d/%d] %s\n%!" completed total label
     in
     let timings =
       Suite.run ~jobs:!jobs ~timeout_s:3600. ~progress ~scale:!scale
         ~names:to_run ()
     in
     List.iter
       (fun (t : Suite.timing) ->
         print_string t.Suite.t_output;
         Printf.printf "[%s: %.1fs]\n\n%!" t.Suite.t_name t.Suite.t_wall_s)
       timings;
     (match !json_out with
     | Some path -> write_json path !jobs timings
     | None -> ());
     let failed =
       List.concat_map (fun (t : Suite.timing) -> t.Suite.t_failures) timings
     in
     if failed <> [] then begin
       List.iter (Printf.eprintf "FAILED %s\n") failed;
       exit 1
     end);
  if want_micro || names = [] then micro ()
