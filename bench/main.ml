(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section, plus the ablation benches, and (with [micro]) runs
   Bechamel micro-benchmarks of the core operations.

   Usage:
     dune exec bench/main.exe                 # all tables+figures, full scale
     dune exec bench/main.exe -- --quick      # smoke-test sizes
     dune exec bench/main.exe -- fig8 table2  # a subset
     dune exec bench/main.exe -- micro        # Bechamel micro-benchmarks
     dune exec bench/main.exe -- --json out.json fig8   # machine-readable timings

   [--json FILE] writes one record per experiment run:
     [{"name": "fig8", "wall_s": 1.234567, "sim_ms": 56789.123,
       "scale": "quick"}, ...]
   where [wall_s] is host wall-clock seconds and [sim_ms] the simulated
   milliseconds the experiment consumed (delta of
   [Vlog_util.Clock.advanced_total] around the run).  The schema is
   documented in DESIGN.md; CI's bench-smoke job validates it. *)

open Experiments

let scale = ref Rigs.Full
let json_out : string option ref = ref None

(* (name, wall seconds, simulated ms), in run order. *)
let timings : (string * float * float) list ref = ref []

let run_tech_trends () =
  (* One measurement feeds both Table 2 and Figure 9. *)
  let rows = Tech_trends.series ~scale:!scale () in
  Vlog_util.Table.print (Tech_trends.table2_of rows);
  print_newline ();
  Vlog_util.Table.print (Tech_trends.fig9_of rows)

let timed name f =
  let t0 = Unix.gettimeofday () in
  let s0 = Vlog_util.Clock.advanced_total () in
  f ();
  let wall = Unix.gettimeofday () -. t0 in
  let sim = Vlog_util.Clock.advanced_total () -. s0 in
  timings := (name, wall, sim) :: !timings;
  Printf.printf "[%s: %.1fs]\n\n%!" name wall

let write_json path =
  let oc = open_out path in
  let scale_s = match !scale with Rigs.Quick -> "quick" | Rigs.Full -> "full" in
  let rows = List.rev !timings in
  let n = List.length rows in
  output_string oc "[\n";
  List.iteri
    (fun i (name, wall, sim) ->
      Printf.fprintf oc
        "  {\"name\": %S, \"wall_s\": %.6f, \"sim_ms\": %.3f, \"scale\": %S}%s\n"
        name wall sim scale_s
        (if i = n - 1 then "" else ","))
    rows;
  output_string oc "]\n";
  close_out oc

let experiments : (string * (unit -> unit)) list =
  let table t = Vlog_util.Table.print t in
  [
    ("table1", fun () -> table (Table1.run ~scale:!scale ()));
    ("fig1", fun () -> table (Fig1.run ~scale:!scale ()));
    ("fig2", fun () -> table (Fig2.run ~scale:!scale ()));
    ("fig6", fun () -> table (Fig6.run ~scale:!scale ()));
    ("fig7", fun () -> table (Fig7.run ~scale:!scale ()));
    ("fig8", fun () -> table (Fig8.run ~scale:!scale ()));
    ("table2", run_tech_trends);
    ("fig10", fun () -> table (Fig10.run ~scale:!scale ()));
    ("fig11", fun () -> table (Fig11.run ~scale:!scale ()));
    ("apps", fun () -> table (Apps.run ~scale:!scale ()));
    ( "vlfs",
      fun () ->
        table (Vlfs_bench.sync_updates ~scale:!scale ());
        print_newline ();
        table (Vlfs_bench.buffered_small_files ~scale:!scale ());
        print_newline ();
        table (Vlfs_bench.recovery_cost ~scale:!scale ()) );
    ("ablation-mode", fun () -> table (Ablations.eager_mode ~scale:!scale ()));
    ("ablation-compact", fun () -> table (Ablations.compaction_policy ~scale:!scale ()));
    ("ablation-blocksize", fun () -> table (Ablations.block_size ~scale:!scale ()));
    ("ablation-mapbatch", fun () -> table (Ablations.map_batching ~scale:!scale ()));
  ]

(* ---- Bechamel micro-benchmarks of the core operations ---- *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  let make_vld_rig () =
    Rigs.rig ~fs:(Workload.Setup.UFS { sync_data = true }) ~dev:Workload.Setup.VLD ()
  in
  let vld_rig = make_vld_rig () in
  let reg_rig =
    Rigs.rig ~fs:(Workload.Setup.UFS { sync_data = true }) ~dev:Workload.Setup.Regular ()
  in
  let payload = Bytes.make 4096 'b' in
  let counter = ref 0 in
  let n_blocks rig = rig.Workload.Setup.dev.Blockdev.Device.n_blocks in
  let write_block rig () =
    incr counter;
    ignore (rig.Workload.Setup.dev.Blockdev.Device.write (!counter * 37 mod n_blocks rig) payload)
  in
  let node =
    {
      Vlog.Map_codec.seq = 1L;
      piece = 0;
      kind = Vlog.Map_codec.Node;
      txn_id = 1L;
      txn_commit = true;
      ptrs = [ { Vlog.Map_codec.pba = 1; seq = 0L } ];
      entries = Array.make 900 7;
    }
  in
  let encoded = Vlog.Map_codec.encode_node ~block_bytes:4096 node in
  (* Eager allocation at 95% utilization — where the indexed search has
     to prune hardest.  Same freemap state for every variant; [search]
     is pure, so each run does the full search from scratch. *)
  let eager_alloc mode =
    let clock = Vlog_util.Clock.create () in
    let disk = Disk.Disk_sim.create ~profile:Rigs.seagate ~clock () in
    let g = Disk.Disk_sim.geometry disk in
    let freemap = Vlog.Freemap.create ~geometry:g ~sectors_per_block:8 in
    let prng = Vlog_util.Prng.create ~seed:0x95L in
    Vlog.Freemap.random_occupy freemap prng ~utilization:0.95;
    Vlog.Eager.create ~mode ~disk ~freemap ()
  in
  let eager_sweep = eager_alloc Vlog.Eager.Sweep in
  let eager_nearest = eager_alloc Vlog.Eager.Nearest in
  let no_exclude _ = false in
  let tests =
    Test.make_grouped ~name:"vlogfs"
      [
        Test.make ~name:"vld-sync-write-4k" (Staged.stage (write_block vld_rig));
        Test.make ~name:"regular-sync-write-4k" (Staged.stage (write_block reg_rig));
        Test.make ~name:"map-node-encode"
          (Staged.stage (fun () ->
               ignore (Vlog.Map_codec.encode_node ~block_bytes:4096 node)));
        Test.make ~name:"map-node-decode"
          (Staged.stage (fun () -> ignore (Vlog.Map_codec.decode_node encoded)));
        Test.make ~name:"analytic-cylinder-model"
          (Staged.stage (fun () ->
               ignore (Models.Cylinder_model.locate_ms Rigs.seagate ~p:0.2)));
        Test.make ~name:"eager-alloc-sweep-95"
          (Staged.stage (fun () ->
               ignore
                 (Vlog.Eager.search eager_sweep ~exclude_tracks:no_exclude
                    ~lead_time:0.)));
        Test.make ~name:"eager-alloc-nearest-95"
          (Staged.stage (fun () ->
               ignore
                 (Vlog.Eager.search eager_nearest ~exclude_tracks:no_exclude
                    ~lead_time:0.)));
        Test.make ~name:"eager-alloc-reference-95"
          (Staged.stage (fun () ->
               ignore
                 (Vlog.Eager.Reference.search eager_sweep
                    ~exclude_tracks:no_exclude ~lead_time:0.)));
      ]
  in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:(Some 500) () in
  let instances = Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let results, _ = (Analyze.merge ols instances [ results ], raw) in
  let window =
    match Notty_unix.winsize Unix.stdout with
    | Some (w, h) -> { Bechamel_notty.w; h }
    | None -> { Bechamel_notty.w = 100; h = 1 }
  in
  let () =
    Bechamel_notty.Unit.add Instance.monotonic_clock
      (Measure.unit Instance.monotonic_clock)
  in
  let img = Bechamel_notty.Multiple.image_of_ols_results ~rect:window ~predictor:Measure.run results in
  Notty_unix.eol img |> Notty_unix.output_image

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let rec strip_json acc = function
    | [] -> List.rev acc
    | "--json" :: path :: rest ->
      json_out := Some path;
      strip_json acc rest
    | [ "--json" ] ->
      prerr_endline "--json requires a file argument";
      exit 2
    | a :: rest -> strip_json (a :: acc) rest
  in
  let args = strip_json [] args in
  let quick = List.mem "--quick" args in
  if quick then scale := Rigs.Quick;
  let names = List.filter (fun a -> a <> "--quick") args in
  let want_micro = List.mem "micro" names in
  let names = List.filter (fun a -> a <> "micro") names in
  let to_run =
    match names with
    | [] -> experiments
    | names ->
      List.filter_map
        (fun n ->
          match List.assoc_opt n experiments with
          | Some f -> Some (n, f)
          | None ->
            Printf.eprintf "unknown experiment %s (known: %s)\n" n
              (String.concat ", " (List.map fst experiments));
            exit 2)
        names
  in
  List.iter (fun (name, f) -> timed name f) to_run;
  (match !json_out with Some path -> write_json path | None -> ());
  if want_micro || names = [] then micro ()
