(* vlsim: command-line front end to the virtual-log simulator.

   vlsim experiments            — list the reproducible tables/figures
   vlsim run fig8 [--quick]     — regenerate one (or more) of them
   vlsim model track --disk st --free 20
   vlsim model cylinder --disk hp --free 20
   vlsim model compactor --disk st --threshold 25
   vlsim latency --disk st --util 80 [--host sparc|ultra]
                                — one-off random-update measurement
   vlsim faults [--fault-plan torn,rot] [--fault-seed 7101]
                                — crash/fault injection sweep
   vlsim trace small-file --fs ufs --dev vld --out trace.jsonl --metrics
                                — run a workload with tracing on *)

open Cmdliner

let disk_conv =
  let parse = function
    | "hp" | "hp97560" -> Ok Disk.Profile.hp97560
    | "st" | "st19101" | "seagate" -> Ok Disk.Profile.st19101
    | s -> Error (`Msg (Printf.sprintf "unknown disk %S (use hp or st)" s))
  in
  Arg.conv (parse, fun ppf p -> Format.pp_print_string ppf p.Disk.Profile.name)

let host_conv =
  let parse = function
    | "sparc" | "sparc10" -> Ok Host.sparc10
    | "ultra" | "ultra170" -> Ok Host.ultra170
    | "free" -> Ok Host.free
    | s -> Error (`Msg (Printf.sprintf "unknown host %S (use sparc, ultra or free)" s))
  in
  Arg.conv (parse, fun ppf (h : Host.t) -> Format.pp_print_string ppf h.Host.name)

let disk_arg =
  Arg.(value & opt disk_conv Disk.Profile.st19101 & info [ "disk" ] ~doc:"hp or st")

let host_arg =
  Arg.(value & opt host_conv Host.sparc10 & info [ "host" ] ~doc:"sparc, ultra or free")

let quick_arg = Arg.(value & flag & info [ "quick" ] ~doc:"smoke-test sizes")

(* The cross-cutting flags ([--jobs]/[-j], [--seed], [--json]) share one
   vocabulary with bench/main.exe: the names and docv come from
   [Vlog_util.Cli] so the two entry points can never drift apart in
   spelling; only the doc string is command-specific. *)
let cli_info ?(extra_names = []) ?doc (spec : Vlog_util.Cli.spec) =
  let doc = match doc with Some d -> d | None -> spec.Vlog_util.Cli.doc in
  Arg.info (spec.Vlog_util.Cli.names @ extra_names) ~docv:spec.Vlog_util.Cli.docv ~doc

let jobs_arg =
  Arg.(
    value
    & opt int (Par.default_jobs ())
    & cli_info Vlog_util.Cli.jobs
        ~doc:
          "worker processes to fan sweep cells out to (default: detected \
           cores, or \\$(b,VLSIM_JOBS)); results are merged in matrix order, \
           so the report is identical for every N")

(* --- experiments --- *)

let experiment_names =
  [
    "table1"; "fig1"; "fig2"; "fig6"; "fig7"; "fig8"; "table2"; "fig9"; "fig10"; "vlfs"; "apps";
    "fig11"; "volume"; "ablation-mode"; "ablation-compact"; "ablation-blocksize";
    "ablation-mapbatch";
  ]

let list_cmd =
  let doc = "list the reproducible tables and figures" in
  let run () = List.iter print_endline experiment_names in
  Cmd.v (Cmd.info "experiments" ~doc) Term.(const run $ const ())

let run_experiment ~scale name =
  let open Experiments in
  let p t = Vlog_util.Table.print t in
  match name with
  | "table1" -> p (Table1.run ~scale ())
  | "fig1" -> p (Fig1.run ~scale ())
  | "fig2" -> p (Fig2.run ~scale ())
  | "fig6" -> p (Fig6.run ~scale ())
  | "fig7" -> p (Fig7.run ~scale ())
  | "fig8" -> p (Fig8.run ~scale ())
  | "table2" | "fig9" ->
    let rows = Tech_trends.series ~scale () in
    p (Tech_trends.table2_of rows);
    p (Tech_trends.fig9_of rows)
  | "fig10" -> p (Fig10.run ~scale ())
  | "fig11" -> p (Fig11.run ~scale ())
  | "vlfs" ->
    p (Vlfs_bench.sync_updates ~scale ());
    p (Vlfs_bench.buffered_small_files ~scale ());
    p (Vlfs_bench.recovery_cost ~scale ())
  | "apps" -> p (Apps.run ~scale ())
  | "volume" -> p (Volume_bench.run ~scale ())
  | "ablation-mode" -> p (Ablations.eager_mode ~scale ())
  | "ablation-compact" -> p (Ablations.compaction_policy ~scale ())
  | "ablation-blocksize" -> p (Ablations.block_size ~scale ())
  | "ablation-mapbatch" -> p (Ablations.map_batching ~scale ())
  | other -> Printf.eprintf "unknown experiment %s\n" other

let run_cmd =
  let doc = "regenerate tables/figures from the paper" in
  let names =
    Arg.(value & pos_all string experiment_names & info [] ~docv:"EXPERIMENT")
  in
  let run quick names =
    let scale = if quick then Experiments.Rigs.Quick else Experiments.Rigs.Full in
    List.iter (run_experiment ~scale) names
  in
  Cmd.v (Cmd.info "run" ~doc) Term.(const run $ quick_arg $ names)

(* --- models --- *)

let pct_arg name doc = Arg.(value & opt float 20. & info [ name ] ~doc)

let model_cmd =
  let doc = "evaluate the analytical models of Section 2" in
  let which =
    Arg.(
      required
      & pos 0 (some (enum [ ("track", `Track); ("cylinder", `Cylinder); ("compactor", `Compactor) ])) None
      & info [] ~docv:"MODEL")
  in
  let run which profile free_pct threshold_pct =
    match which with
    | `Track ->
      let p = free_pct /. 100. in
      Printf.printf "single-track model (formula 1): %.4f ms (%.2f sectors)\n"
        (Models.Track_model.locate_ms profile ~p)
        (Models.Track_model.expected_skips_p
           ~n:profile.Disk.Profile.geometry.Disk.Geometry.sectors_per_track ~p)
    | `Cylinder ->
      let p = free_pct /. 100. in
      Printf.printf "single-cylinder model (formula 2): %.4f ms\n"
        (Models.Cylinder_model.locate_ms profile ~p)
    | `Compactor ->
      let threshold = threshold_pct /. 100. in
      Printf.printf "compactor model (formula 13): %.4f ms (optimal threshold %.0f%%)\n"
        (Models.Compactor_model.latency_ms profile ~threshold)
        (100. *. Models.Compactor_model.optimal_threshold profile)
  in
  Cmd.v (Cmd.info "model" ~doc)
    Term.(
      const run $ which $ disk_arg
      $ pct_arg "free" "free-space percentage"
      $ pct_arg "threshold" "track-switch threshold percentage")

(* --- latency --- *)

let latency_cmd =
  let doc = "measure random synchronous 4 KB update latency on one rig" in
  let util_arg = Arg.(value & opt float 80. & info [ "util" ] ~doc:"target utilization %") in
  let vld_arg = Arg.(value & flag & info [ "vld" ] ~doc:"use the virtual log disk") in
  let run profile host util_pct vld quick =
    let dev = if vld then Workload.Setup.VLD else Workload.Setup.Regular in
    let rig =
      Workload.Setup.make ~profile ~host ~fs:(Workload.Setup.UFS { sync_data = true })
        ~dev ()
    in
    let file_mb = Experiments.Rigs.file_mb_for_utilization rig (util_pct /. 100.) in
    let updates = if quick then 100 else 600 in
    let r =
      Workload.Random_update.run ~updates ~compact_first:vld ~file_mb rig
    in
    Format.printf "%s on %s, %s host, %.0f%% utilization:@."
      (if vld then "UFS/VLD" else "UFS/regular")
      profile.Disk.Profile.name host.Host.name
      (100. *. r.Workload.Random_update.utilization);
    Format.printf "  %.3f ms per 4 KB synchronous update (%a)@."
      r.Workload.Random_update.mean_latency_ms Vlog_util.Breakdown.pp
      r.Workload.Random_update.breakdown
  in
  Cmd.v (Cmd.info "latency" ~doc)
    Term.(const run $ disk_arg $ host_arg $ util_arg $ vld_arg $ quick_arg)

(* --- faults --- *)

let faults_cmd =
  let doc =
    "sweep deterministic fault injections (torn writes, bit rot, transient \
     reads, grown defects, power cuts) across operation boundaries and check \
     the recovery invariants"
  in
  let plan_arg =
    Arg.(
      value
      & opt string "powercut,torn,defect,rot,transient:2"
      & info [ "fault-plan" ] ~docv:"KINDS"
          ~doc:
            "comma-separated fault kinds to sweep: torn, rot, transient[:n], \
             defect, powercut")
  in
  let seed_arg =
    Arg.(
      value & opt int 7101
      & cli_info Vlog_util.Cli.seed ~extra_names:[ "fault-seed" ]
          ~doc:"master seed for the sweep")
  in
  let triggers_arg =
    Arg.(
      value & opt int 22
      & info [ "triggers" ] ~doc:"operation boundaries swept per fault kind")
  in
  let repro_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "repro" ] ~docv:"SPEC"
          ~doc:
            "rerun exactly one failing cell, as printed by a failure: \
             seed=7101,kind=torn,trigger=5,tail=true,case=37")
  in
  let report o =
    Printf.printf
      "%d scenarios (%d faults injected): %d power cuts, %d degraded recoveries\n"
      o.Fault.Sweep.scenarios o.Fault.Sweep.injected o.Fault.Sweep.cut
      o.Fault.Sweep.degraded;
    if o.Fault.Sweep.failures = [] then print_endline "all invariants satisfied"
    else begin
      List.iter
        (fun fl -> Format.printf "FAILED %a@." Fault.Sweep.pp_failure fl)
        o.Fault.Sweep.failures;
      exit 1
    end
  in
  let run plan seed triggers quick jobs repro =
    match repro with
    | Some spec -> (
      match Fault.Sweep.parse_repro spec with
      | Error e ->
        Printf.eprintf "vlsim: %s\n" e;
        exit 2
      | Ok (seed_override, kind, trigger, with_tail, case) ->
        let cfg =
          {
            Fault.Sweep.default with
            Fault.Sweep.seed =
              Option.value seed_override ~default:(Int64.of_int seed);
          }
        in
        report (Fault.Sweep.run_scenario cfg ~kind ~trigger ~with_tail ~case))
    | None ->
      let kinds, errors =
        List.fold_right
          (fun s (ks, es) ->
            match Fault.Plan.kind_of_string (String.trim s) with
            | Ok k -> (k :: ks, es)
            | Error e -> (ks, e :: es))
          (String.split_on_char ',' plan)
          ([], [])
      in
      if errors <> [] then begin
        List.iter (Printf.eprintf "vlsim: %s\n") errors;
        exit 2
      end;
      (match List.filter Fault.Plan.is_drive_kind kinds with
      | [] -> ()
      | drive ->
        List.iter
          (fun k ->
            Printf.eprintf
              "vlsim: %s is a whole-drive fault; this single-spindle sweep \
               cannot express it — use vlsim fssweep, whose volume rigs \
               inject it into one mirror leg\n"
              (Fault.Plan.kind_to_string k))
          drive;
        exit 2);
      (match List.filter Fault.Plan.is_nvm_kind kinds with
      | [] -> ()
      | nvm ->
        List.iter
          (fun k ->
            Printf.eprintf
              "vlsim: %s strikes an NVM staging tier; this single-spindle \
               sweep has none — use vlsim fssweep, whose nvm rigs judge the \
               staged persistence boundary\n"
              (Fault.Plan.kind_to_string k))
          nvm;
        exit 2);
      let cfg =
        {
          Fault.Sweep.default with
          Fault.Sweep.seed = Int64.of_int seed;
          kinds;
          triggers = (if quick then min triggers 6 else triggers);
        }
      in
      report (Fault.Sweep.run ~jobs cfg)
  in
  Cmd.v (Cmd.info "faults" ~doc)
    Term.(
      const run $ plan_arg $ seed_arg $ triggers_arg $ quick_arg $ jobs_arg
      $ repro_arg)

(* --- fssweep --- *)

let fssweep_cmd =
  let doc =
    "crash/fault sweep at the file-system level: run a seeded metadata \
     workload on each (file system x device) rig with a fault plan armed, \
     freeze the platters, remount, and judge the result with fsck, the \
     durability oracle, and a remount-idempotence check"
  in
  let seed_arg =
    Arg.(
      value & opt int 9203
      & cli_info Vlog_util.Cli.seed ~doc:"master seed for the sweep")
  in
  let repro_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "repro" ] ~docv:"SPEC"
          ~doc:
            "rerun exactly one failing cell, as printed by a failure: \
             rig=ufs/vld,seed=9203,kind=torn,trigger=5,case=37")
  in
  let report o =
    Printf.printf
      "%d scenarios (%d faults injected): %d power cuts, %d degraded \
       recoveries, %d oracle checks\n"
      o.Check.Fs_sweep.scenarios o.Check.Fs_sweep.injected o.Check.Fs_sweep.cut
      o.Check.Fs_sweep.degraded_mounts o.Check.Fs_sweep.oracle_checks;
    if o.Check.Fs_sweep.failures = [] then
      print_endline "all file systems recovered consistently"
    else begin
      List.iter
        (fun fl -> Format.printf "FAILED %a@." Check.Fs_sweep.pp_failure fl)
        o.Check.Fs_sweep.failures;
      exit 1
    end
  in
  let run seed quick jobs repro =
    match repro with
    | Some spec -> (
      match Check.Fs_sweep.parse_repro spec with
      | Error e ->
        Printf.eprintf "vlsim: %s\n" e;
        exit 2
      | Ok (rig, seed_override, kind, trigger, case) ->
        let cfg =
          {
            Check.Fs_sweep.default with
            Check.Fs_sweep.seed =
              Option.value seed_override ~default:(Int64.of_int seed);
          }
        in
        report (Check.Fs_sweep.run_cell cfg ~rig ~kind ~trigger ~case))
    | None ->
      let cfg =
        if quick then Check.Fs_sweep.smoke else Check.Fs_sweep.default
      in
      report
        (Check.Fs_sweep.run ~jobs
           { cfg with Check.Fs_sweep.seed = Int64.of_int seed })
  in
  Cmd.v (Cmd.info "fssweep" ~doc)
    Term.(const run $ seed_arg $ quick_arg $ jobs_arg $ repro_arg)

(* --- arraysweep --- *)

let arraysweep_cmd =
  let doc =
    "whole-drive fault sweep over the queued array data path: drive each \
     volume shape with windows of outstanding commands while a drive-fault \
     plan (death, hang, flaky, latent, double-death) fires mid-batch, \
     mid-drain, or mid-rebuild, then judge with the volume checker, the \
     durability oracle, and a crash/remount — honest data loss is required \
     where redundancy cannot cover the fault"
  in
  let seed_arg =
    Arg.(
      value & opt int 9203
      & cli_info Vlog_util.Cli.seed ~doc:"master seed for the sweep")
  in
  let repro_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "repro" ] ~docv:"SPEC"
          ~doc:
            "rerun exactly one cell, as printed by a failure: \
             array=raid10,seed=9203,fault=death,depth=4,phase=rebuild,case=37")
  in
  let verdicts_arg =
    Arg.(
      value & flag
      & info [ "verdicts" ]
          ~doc:"print one verdict line per cell (the CI determinism probe)")
  in
  let report ~verdicts o =
    if verdicts then
      List.iter
        (fun (c, v) -> Printf.printf "cell %s: %s\n" c v)
        o.Check.Array_sweep.verdicts;
    Printf.printf
      "%d cells (%d faults injected): %d honest data losses, %d recoveries, \
       %d oracle checks\n"
      o.Check.Array_sweep.cells o.Check.Array_sweep.injected
      o.Check.Array_sweep.data_loss o.Check.Array_sweep.recovered
      o.Check.Array_sweep.oracle_checks;
    if o.Check.Array_sweep.failures = [] then
      print_endline "every cell reported a verdict and no fault was masked"
    else begin
      List.iter
        (fun fl -> Format.printf "FAILED %a@." Check.Array_sweep.pp_failure fl)
        o.Check.Array_sweep.failures;
      exit 1
    end
  in
  let run seed quick jobs repro verdicts =
    match repro with
    | Some spec -> (
      match Check.Array_sweep.parse_repro spec with
      | Error e ->
        Printf.eprintf "vlsim: %s\n" e;
        exit 2
      | Ok (array, seed_override, fault, depth, phase, case) ->
        let cfg =
          {
            Check.Array_sweep.default with
            Check.Array_sweep.seed =
              Option.value seed_override ~default:(Int64.of_int seed);
          }
        in
        report ~verdicts
          (Check.Array_sweep.run_cell cfg ~array ~fault ~depth ~phase ~case))
    | None ->
      let cfg =
        if quick then Check.Array_sweep.smoke else Check.Array_sweep.default
      in
      report ~verdicts
        (Check.Array_sweep.run ~jobs
           { cfg with Check.Array_sweep.seed = Int64.of_int seed })
  in
  Cmd.v (Cmd.info "arraysweep" ~doc)
    Term.(const run $ seed_arg $ quick_arg $ jobs_arg $ repro_arg $ verdicts_arg)

(* --- volume --- *)

let volume_layout_of_string s =
  let int n = try Some (int_of_string n) with _ -> None in
  match String.split_on_char ':' s with
  | [ "stripe"; k ] -> (
    match int k with
    | Some k when k >= 1 -> Ok (Volume.Stripe k)
    | _ -> Error (Printf.sprintf "bad stripe width %S" k))
  | [ "mirror"; m ] -> (
    match int m with
    | Some m when m >= 2 -> Ok (Volume.Mirror m)
    | _ -> Error (Printf.sprintf "bad mirror width %S (need >= 2)" m))
  | [ "raid10"; km ] -> (
    match String.split_on_char 'x' km with
    | [ k; m ] -> (
      match (int k, int m) with
      | Some k, Some m when k >= 1 && m >= 2 -> Ok (Volume.Stripe_of_mirrors (k, m))
      | _ -> Error (Printf.sprintf "bad raid10 shape %S (KxM, M >= 2)" km))
    | _ -> Error (Printf.sprintf "bad raid10 shape %S (want KxM)" km))
  | _ ->
    Error
      (Printf.sprintf "unknown layout %S (use stripe:K, mirror:M or raid10:KxM)" s)

let volume_cmd =
  let doc =
    "build a multi-disk volume in the simulator and walk it through a failure \
     story: mk writes a tagged workload, fail kills the requested legs and \
     re-reads every block (exits 1 on data loss instead of hanging), rebuild \
     resilvers dead legs onto hot spares and runs the volume checker, status \
     prints the leg map"
  in
  let actions_arg =
    Arg.(
      value
      & pos_all
          (enum
             [ ("mk", `Mk); ("status", `Status); ("fail", `Fail); ("rebuild", `Rebuild) ])
          [ `Mk; `Status ]
      & info [] ~docv:"ACTION"
          ~doc:
            "mk, status, fail, rebuild — applied in order to one in-memory \
             volume (default: mk status)")
  in
  let layout_arg =
    Arg.(
      value & opt string "mirror:2"
      & info [ "layout" ] ~docv:"LAYOUT" ~doc:"stripe:K, mirror:M or raid10:KxM")
  in
  let legs_arg =
    Arg.(
      value
      & opt (enum [ ("vld", Volume.Vld_leg); ("regular", Volume.Regular_leg) ])
          Volume.Vld_leg
      & info [ "legs" ] ~doc:"leg kind: vld or regular")
  in
  let blocks_arg =
    Arg.(value & opt int 48 & info [ "blocks" ] ~doc:"logical blocks in the volume")
  in
  let kill_arg =
    Arg.(
      value & opt_all int []
      & info [ "kill" ] ~docv:"LEG"
          ~doc:"flat leg index to kill during the fail action (repeatable)")
  in
  let fault_arg =
    Arg.(
      value & opt_all string []
      & info [ "fault" ] ~docv:"KIND[@LEG]"
          ~doc:
            "whole-drive fault plan to arm on a leg during the fail action \
             (repeatable): death, hang[:ms], flaky[:n] or latent[:n], \
             optionally pinned to a flat leg index as in hang:80@2 \
             (default leg 0)")
  in
  let run actions layout_s leg_kind blocks kills fault_specs profile =
    match volume_layout_of_string layout_s with
    | Error e ->
      Printf.eprintf "vlsim: %s\n" e;
      exit 2
    | Ok layout ->
      let n = Volume.n_legs layout in
      let clock = Vlog_util.Clock.create () in
      let mk_disk () =
        Disk.Disk_sim.create ~buffer_policy:Disk.Track_buffer.Whole_track
          ~profile ~clock ()
      in
      let disks = Array.init n (fun _ -> mk_disk ()) in
      let vol =
        Volume.create ~spare:mk_disk ~layout ~leg_kind ~logical_blocks:blocks
          ~disks
          ~prng:(Vlog_util.Prng.create ~seed:4242L)
          ()
      in
      let dev = Volume.device vol in
      let bb = dev.Blockdev.Device.block_bytes in
      let tag b = Char.chr (33 + (b mod 90)) in
      let m = Volume.legs_per_group vol in
      let act = function
        | `Mk ->
          for b = 0 to blocks - 1 do
            ignore (Blockdev.Device.write dev b (Bytes.make bb (tag b)))
          done;
          Printf.printf
            "created %s volume (%s legs) over %d drives, wrote %d blocks\n"
            layout_s
            (if leg_kind = Volume.Vld_leg then "vld" else "regular")
            n blocks
        | `Status -> Format.printf "%a@?" Volume.pp_status vol
        | `Fail ->
          List.iter
            (fun i ->
              if i < 0 || i >= n then begin
                Printf.eprintf "vlsim: no leg %d (volume has %d legs)\n" i n;
                exit 2
              end;
              Volume.kill vol ~group:(i / m) ~leg:(i mod m);
              Printf.printf "killed leg %d (group %d, mirror copy %d)\n" i
                (i / m) (i mod m))
            kills;
          List.iter
            (fun spec ->
              match Fault.Plan.leg_spec_of_string spec with
              | Error e ->
                Printf.eprintf "vlsim: %s\n" e;
                exit 2
              | Ok { Fault.Plan.ls_kind; ls_leg } ->
                let i = Option.value ls_leg ~default:0 in
                if i < 0 || i >= n then begin
                  Printf.eprintf "vlsim: no leg %d (volume has %d legs)\n" i n;
                  exit 2
                end;
                let p =
                  Fault.Plan.create ls_kind ~trigger:1 ~seed:4243L
                in
                Fault.Plan.install p (Volume.disks vol).(i);
                Printf.printf "armed %s on leg %d (group %d, mirror copy %d)\n"
                  (Fault.Plan.kind_to_string ls_kind)
                  i (i / m) (i mod m))
            fault_specs;
          let lost = ref 0 in
          for b = 0 to blocks - 1 do
            match dev.Blockdev.Device.read b with
            | Ok (data, _) when Bytes.get data 0 = tag b -> ()
            | Ok _ | Error _ -> incr lost
          done;
          Volume.settle vol;
          if !lost > 0 then begin
            Printf.printf
              "DATA LOSS: %d of %d blocks unreadable — every mirror copy is \
               gone\n"
              !lost blocks;
            exit 1
          end
          else
            Printf.printf "all %d blocks still readable%s\n" blocks
              (if Volume.degraded vol then " (degraded: redundancy lost)"
               else "")
        | `Rebuild ->
          let started = ref 0 in
          for gi = 0 to Volume.n_groups vol - 1 do
            for li = 0 to m - 1 do
              if Volume.state_of vol ~group:gi ~leg:li = `Dead then
                match Volume.start_rebuild vol ~group:gi ~leg:li with
                | Ok () -> incr started
                | Error e ->
                  Printf.eprintf "vlsim: rebuild group %d leg %d: %s\n" gi li e;
                  exit 1
            done
          done;
          Volume.rebuild_to_completion vol;
          let r = Check.Volume_check.check vol in
          Printf.printf "rebuilt %d legs; volume check: %s\n" !started
            (if Check.Report.ok r then "clean" else "DIRTY");
          if not (Check.Report.ok r) then begin
            Format.printf "%a@." Check.Report.pp r;
            exit 1
          end
      in
      List.iter act actions
  in
  Cmd.v (Cmd.info "volume" ~doc)
    Term.(
      const run $ actions_arg $ layout_arg $ legs_arg $ blocks_arg $ kill_arg
      $ fault_arg $ disk_arg)

(* --- nvm --- *)

let nvm_cmd =
  let doc =
    "build an NVM write-ahead staging tier over a logical disk and poke it: \
     mk stages a tagged synchronous workload in the NVM log, status prints \
     the log occupancy and destage progress, drain destages everything and \
     verifies each block reads back from the backing device"
  in
  let actions_arg =
    Arg.(
      value
      & pos_all (enum [ ("mk", `Mk); ("status", `Status); ("drain", `Drain) ])
          [ `Mk; `Status ]
      & info [] ~docv:"ACTION"
          ~doc:
            "mk, status, drain — applied in order to one in-memory staged \
             stack (default: mk status)")
  in
  let backing_arg =
    Arg.(
      value
      & opt (enum [ ("vld", `Vld); ("regular", `Regular) ]) `Vld
      & info [ "backing" ] ~doc:"device behind the staging tier: vld or regular")
  in
  let blocks_arg =
    Arg.(
      value & opt int 48
      & info [ "blocks" ] ~doc:"blocks the staged workload writes")
  in
  let log_bytes_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "log-bytes" ] ~docv:"N"
          ~doc:
            "cap the NVM log region at $(docv) bytes (default: the whole 8 \
             MiB region); tiny caps show the backpressure path")
  in
  let run actions backing blocks log_bytes profile =
    let clock = Vlog_util.Clock.create () in
    let disk =
      Disk.Disk_sim.create ~buffer_policy:Disk.Track_buffer.Whole_track ~profile
        ~clock ()
    in
    let prng = Vlog_util.Prng.create ~seed:4242L in
    let inner =
      match backing with
      | `Vld ->
        Blockdev.Vld.device
          (Blockdev.Vld.create ~disk ~logical_blocks:(max 64 (blocks * 2)) ~prng
             ())
      | `Regular ->
        Blockdev.Regular_disk.device
          (Blockdev.Regular_disk.create ~disk ~spare_blocks:8 ())
    in
    let nvm = Nvm.Nvm_sim.create ~clock () in
    let config = { Nvm.Nvm_wal.default_config with Nvm.Nvm_wal.log_bytes } in
    let wal = Nvm.Nvm_wal.create ~config ~nvm ~inner () in
    let dev = Nvm.Nvm_wal.device wal in
    let bb = dev.Blockdev.Device.block_bytes in
    let tag b = Char.chr (33 + (b mod 90)) in
    let act = function
      | `Mk ->
        let staged = ref 0 in
        for b = 0 to blocks - 1 do
          match dev.Blockdev.Device.write b (Bytes.make bb (tag b)) with
          | Ok _ -> incr staged
          | Error e ->
            Format.eprintf "vlsim: nvm: write %d failed: %a@." b
              Blockdev.Device.pp_io_error e;
            exit 1
        done;
        Printf.printf "staged %d synchronous writes over %s backing (%s)\n"
          !staged
          (match backing with `Vld -> "vld" | `Regular -> "regular")
          dev.Blockdev.Device.name
      | `Status ->
        let s = Nvm.Nvm_wal.status wal in
        let st = Nvm.Nvm_sim.stats nvm in
        Printf.printf
          "log: %d entries staged (%d already destaged), %d/%d bytes used\n"
          s.Nvm.Nvm_wal.st_entries s.Nvm.Nvm_wal.st_destaged
          s.Nvm.Nvm_wal.st_log_used s.Nvm.Nvm_wal.st_log_capacity;
        Printf.printf "seq: base %Ld, next %Ld\n" s.Nvm.Nvm_wal.st_base_seq
          s.Nvm.Nvm_wal.st_next_seq;
        Printf.printf
          "nvm: %d stores / %d loads, %d persist barriers, %d auto-drains, %d \
           bytes pending in the volatile front\n"
          st.Nvm.Nvm_sim.nvm_writes st.Nvm.Nvm_sim.nvm_reads
          st.Nvm.Nvm_sim.persists st.Nvm.Nvm_sim.auto_drains
          (Nvm.Nvm_sim.pending_bytes nvm)
      | `Drain -> (
        match Nvm.Nvm_wal.drain wal with
        | Error e ->
          Format.eprintf "vlsim: nvm: drain failed: %a@."
            Blockdev.Device.pp_io_error e;
          exit 1
        | Ok () ->
          let lost = ref 0 in
          for b = 0 to blocks - 1 do
            match inner.Blockdev.Device.read b with
            | Ok (data, _) when Bytes.get data 0 = tag b -> ()
            | Ok _ | Error _ -> incr lost
          done;
          if !lost > 0 then begin
            Printf.printf
              "DATA LOSS: %d of %d blocks wrong or unreadable on the backing \
               device after drain\n"
              !lost blocks;
            exit 1
          end
          else
            Printf.printf
              "drained: all %d blocks verified on the backing device\n" blocks)
    in
    List.iter act actions
  in
  Cmd.v (Cmd.info "nvm" ~doc)
    Term.(
      const run $ actions_arg $ backing_arg $ blocks_arg $ log_bytes_arg
      $ disk_arg)

(* --- mkimage --- *)

let fs_kind_arg =
  Arg.(
    required
    & opt
        (some
           (enum
              [
                ("ufs", Check.Fs_sweep.F_ufs);
                ("lfs", Check.Fs_sweep.F_lfs);
                ("vlfs", Check.Fs_sweep.F_vlfs);
              ]))
        None
    & info [ "fs" ] ~docv:"FS" ~doc:"file system: ufs, lfs, or vlfs")

let mkimage_cmd =
  let doc =
    "write a small file-system image to a file, optionally with one piece of \
     metadata corrupted, for vlsim fsck"
  in
  let corrupt_arg =
    Arg.(
      value & opt string "none"
      & info [ "corrupt" ] ~docv:"KIND"
          ~doc:
            "damage to seed: none, dangling (zeroed inode), checksum \
             (garbage with valid ECC), rot (failing sector)")
  in
  let out_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"output image path")
  in
  let run fs corrupt out =
    match Check.Fs_sweep.corruption_of_string corrupt with
    | Error e ->
      Printf.eprintf "vlsim: %s\n" e;
      exit 2
    | Ok corrupt -> (
      match Check.Fs_sweep.make_image ~fs ~corrupt with
      | Error e ->
        Printf.eprintf "vlsim: mkimage: %s\n" e;
        exit 1
      | Ok (h, store) ->
        Check.Image.save h store out;
        Printf.printf "wrote %s (%s on %s, profile %s)\n" out h.Check.Image.fs
          h.Check.Image.dev h.Check.Image.profile)
  in
  Cmd.v (Cmd.info "mkimage" ~doc)
    Term.(const run $ fs_kind_arg $ corrupt_arg $ out_arg)

(* --- fsck --- *)

let fsck_cmd =
  let doc =
    "check a saved image: rebuild the stack its header names, mount it, run \
     the invariant checker; exits non-zero on findings or a degraded mount"
  in
  let image_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "image" ] ~docv:"FILE" ~doc:"image written by vlsim mkimage")
  in
  let run image =
    match Check.Image.load image with
    | Error e ->
      Printf.eprintf "vlsim: fsck: %s\n" e;
      exit 2
    | Ok (h, store) -> (
      match Check.Fs_sweep.fsck_image h store with
      | Error e ->
        Printf.printf "fsck %s: mount aborted: %s\n" image e;
        exit 1
      | Ok r ->
        Printf.printf "fsck %s: %s on %s (profile %s)\n" image
          h.Check.Image.fs h.Check.Image.dev h.Check.Image.profile;
        Format.printf "%a@." Check.Report.pp r.Check.Fs_sweep.fr_report;
        let degraded =
          match r.Check.Fs_sweep.fr_mode with
          | `Degraded why ->
            Printf.printf "mounted DEGRADED (read-only): %s\n" why;
            true
          | `Rw -> false
        in
        if degraded || not (Check.Report.ok r.Check.Fs_sweep.fr_report) then
          exit 1)
  in
  Cmd.v (Cmd.info "fsck" ~doc) Term.(const run $ image_arg)

(* --- trace --- *)

let trace_cmd =
  let doc =
    "run a workload with tracing enabled: export the span/counter/histogram \
     stream as JSON Lines and/or print a metrics summary or flamegraph"
  in
  let workload_arg =
    Arg.(
      required
      & pos 0
          (some
             (enum
                [
                  ("small-file", `Small);
                  ("random-update", `Random);
                  ("seq-read", `Seq);
                  ("tenant-mix", `Tenants);
                ]))
          None
      & info [] ~docv:"WORKLOAD"
          ~doc:
            "small-file, random-update, seq-read or tenant-mix (a sharded \
             multi-tenant write mix on a mirrored volume; the metrics summary \
             then includes the per-tenant fairness table)")
  in
  let fs_arg =
    Arg.(
      value
      & opt (enum [ ("ufs", `Ufs); ("lfs", `Lfs); ("vlfs", `Vlfs) ]) `Ufs
      & info [ "fs" ] ~doc:"ufs, lfs or vlfs")
  in
  let dev_arg =
    Arg.(
      value
      & opt (enum [ ("regular", Workload.Setup.Regular); ("vld", Workload.Setup.VLD) ])
          Workload.Setup.VLD
      & info [ "dev" ] ~doc:"regular or vld (ignored for vlfs)")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"write the trace as JSON Lines to $(docv)")
  in
  let metrics_arg =
    Arg.(value & flag & info [ "metrics" ] ~doc:"print the metrics summary table")
  in
  let flame_arg =
    Arg.(value & flag & info [ "flamegraph" ] ~doc:"print a text flamegraph")
  in
  let ops_arg =
    Arg.(
      value & opt int 40
      & info [ "ops" ] ~doc:"workload size (files to create / updates to apply)")
  in
  let run workload fs dev profile host out metrics flame ops =
    let fs_choice =
      match fs with
      | `Ufs -> Workload.Setup.UFS { sync_data = true }
      | `Lfs -> Workload.Setup.LFS { buffer_blocks = 1561 }
      | `Vlfs -> Workload.Setup.VLFS { sync_writes = true }
    in
    let sink =
      match workload with
      | `Tenants ->
        (* One shard so every tenant's stream shares the spindles — the
           interesting fairness case — with one live sink across them. *)
        let cfg = { Tenant.default with Tenant.shards = 1; ops_per_tenant = ops } in
        let schedule = Tenant.plan cfg in
        let _, sink = Tenant.run_shard ~trace:true cfg ~shard:0 schedule.(0) in
        sink
      | (`Small | `Random | `Seq) as w ->
        let rig =
          Workload.Setup.make ~trace:true ~profile ~host ~fs:fs_choice ~dev ()
        in
        (match w with
        | `Small -> ignore (Workload.Small_file.run ~files:ops rig)
        | `Random ->
          ignore (Workload.Random_update.run ~updates:ops ~warmup:0 ~file_mb:2. rig)
        | `Seq ->
          (* Write one [ops]-block file through the buffer, sync it out, drop
             caches, and stream it back: a read-path trace with a cold cache. *)
          let o = rig.Workload.Setup.ops in
          let bs = rig.Workload.Setup.dev.Blockdev.Device.block_bytes in
          ignore (o.Workload.Setup.create "seq");
          ignore (o.Workload.Setup.write "seq" ~off:0 (Bytes.make (ops * bs) 's'));
          ignore (o.Workload.Setup.sync ());
          o.Workload.Setup.drop_caches ();
          ignore (o.Workload.Setup.read "seq" ~off:0 ~len:(ops * bs)));
        Workload.Setup.trace rig
    in
    (match out with
    | Some file ->
      let oc = open_out file in
      output_string oc (Trace.to_jsonl sink);
      close_out oc;
      Printf.printf "wrote %s (%d spans, %d counters)\n" file
        (List.length (Trace.spans sink))
        (List.length (Trace.counters sink))
    | None -> ());
    if metrics || (out = None && not flame) then
      Format.printf "%a@." Trace.pp_summary sink;
    if flame then Format.printf "%a@." Trace.pp_flamegraph sink
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(
      const run $ workload_arg $ fs_arg $ dev_arg $ disk_arg $ host_arg $ out_arg
      $ metrics_arg $ flame_arg $ ops_arg)

let () =
  let doc = "virtual-log based file systems for a programmable disk: simulator" in
  let info = Cmd.info "vlsim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; run_cmd; model_cmd; latency_cmd; faults_cmd; fssweep_cmd;
            arraysweep_cmd; volume_cmd; nvm_cmd; mkimage_cmd; fsck_cmd;
            trace_cmd ]))
